"""Spec 4: crash recovery under replication's declared fault budget.

Abstracts one :class:`~repro.core.failures.replication.ReplicatedBuffer`
(``copies`` mirrors on distinct servers) as a version ledger: every
write bumps an abstract version and propagates it to the mirrors whose
servers are up; crashes strand stale mirrors; repair re-creates dead
mirrors on spare live servers from the lowest-index live one — exactly
the implementation's source and target selection.

Crashes are *bounded by the scheme's declared fault budget* (the new
``fault_budget`` property: ``copies - 1`` simultaneous un-repaired
losses).  Within that discipline the checker proves:

* **no data loss** — every mirror on a live server holds the newest
  version, so any read the implementation serves is current.
* **anti-affinity** — mirrors never share a server.
* **replica available** — at least one mirror stays live.

Every action consumes a bounded budget (writes, crashes) or strictly
reduces degradation (repair), so the graph is a DAG.  The replay
adapter drives a real pool with byte-exact version stamps and
cross-checks mirror placement, degradation, and read contents.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.check.model.replay import ReplayRecorder, ReplayResult
from repro.check.model.spec import Action, Invariant, ModelSpec, State
from repro.errors import ModelCheckError


@dataclasses.dataclass(frozen=True)
class RecoveryModelState:
    """Canonical replicated-buffer configuration."""

    version: int
    #: per replica index: hosting server
    servers: tuple[int, ...]
    #: per replica index: version the mirror holds
    versions: tuple[int, ...]
    #: per server: up or crashed
    alive: tuple[bool, ...]
    writes_left: int
    crashes_left: int


class RecoverySpec(ModelSpec):
    """Model of write / crash / repair on a replicated buffer."""

    name = "recovery"
    description = "replication repair: no data loss below the fault budget"

    def __init__(
        self, server_count: int = 3, copies: int = 2, writes: int = 2, crashes: int = 2
    ) -> None:
        if copies < 2 or copies > server_count:
            raise ModelCheckError(
                f"{copies} copies need [2, {server_count}] distinct servers"
            )
        self.server_count = server_count
        self.copies = copies
        self.writes = writes
        self.crashes = crashes
        #: losses the scheme declares it masks; replay cross-checks this
        #: against the implementation's ``fault_budget`` property
        self.fault_budget = copies - 1

    @classmethod
    def at_scope(cls, scope: str) -> "RecoverySpec":
        if scope == "smoke":
            return cls(server_count=3, copies=2, writes=2, crashes=2)
        if scope == "deep":
            return cls(server_count=4, copies=3, writes=2, crashes=3)
        raise ModelCheckError(f"unknown scope {scope!r} (known: smoke, deep)")

    # -- the state machine ---------------------------------------------------

    def initial_states(self) -> _t.Sequence[State]:
        return [
            RecoveryModelState(
                version=0,
                servers=tuple(range(self.copies)),
                versions=(0,) * self.copies,
                alive=(True,) * self.server_count,
                writes_left=self.writes,
                crashes_left=self.crashes,
            )
        ]

    def _live(self, s: RecoveryModelState) -> list[int]:
        return [r for r in range(self.copies) if s.alive[s.servers[r]]]

    def _spares(self, s: RecoveryModelState) -> list[int]:
        in_use = {s.servers[r] for r in self._live(s)}
        return [
            sid
            for sid in range(self.server_count)
            if sid not in in_use and s.alive[sid]
        ]

    def enabled(self, state: State) -> _t.Sequence[Action]:
        s = _t.cast(RecoveryModelState, state)
        actions: list[Action] = []
        if s.writes_left > 0:
            actions.append(Action("write"))
        live = self._live(s)
        if s.crashes_left > 0:
            for sid in range(self.server_count):
                if not s.alive[sid]:
                    continue
                survivors = [r for r in live if s.servers[r] != sid]
                # the fault-budget discipline: never lose the last mirror
                if survivors:
                    actions.append(Action("crash", (sid,)))
        if len(live) < self.copies and self._spares(s) and live:
            actions.append(Action("repair"))
        return actions

    def apply(self, state: State, action: Action) -> State:
        s = _t.cast(RecoveryModelState, state)
        if action.kind == "write":
            return self._apply_write(s)
        if action.kind == "crash":
            sid = int(action.payload[0])
            return dataclasses.replace(
                s,
                alive=tuple(
                    False if i == sid else up for i, up in enumerate(s.alive)
                ),
                crashes_left=s.crashes_left - 1,
            )
        if action.kind == "repair":
            return self._apply_repair(s)
        raise ModelCheckError(f"recovery: unknown action {action.render()}")

    # Mutants override the keyword defaults below; the base spec mirrors
    # ReplicatedBuffer exactly.

    def _apply_write(
        self, s: RecoveryModelState, all_live_mirrors: bool = True
    ) -> RecoveryModelState:
        version = s.version + 1
        live = self._live(s)
        targets = live if all_live_mirrors else live[:1]
        return dataclasses.replace(
            s,
            version=version,
            versions=tuple(
                version if r in targets else held
                for r, held in enumerate(s.versions)
            ),
            writes_left=s.writes_left - 1,
        )

    def _apply_repair(
        self, s: RecoveryModelState, copy_from_live: bool = True
    ) -> RecoveryModelState:
        live = self._live(s)
        source = live[0]  # the implementation reads the lowest live mirror
        spares = self._spares(s)
        servers = list(s.servers)
        versions = list(s.versions)
        for r in range(self.copies):
            if r in live:
                continue
            if not spares:
                break  # stay degraded; better than colocating mirrors
            target = spares.pop(0)
            servers[r] = target
            versions[r] = versions[source] if copy_from_live else versions[r]
        return dataclasses.replace(
            s, servers=tuple(servers), versions=tuple(versions)
        )

    # -- properties ----------------------------------------------------------

    def invariants(self) -> _t.Sequence[Invariant]:
        return (
            Invariant("no-data-loss", self._check_no_data_loss),
            Invariant("replica-available", self._check_available),
            Invariant("anti-affinity", self._check_anti_affinity),
        )

    def _check_no_data_loss(self, state: State) -> str | None:
        s = _t.cast(RecoveryModelState, state)
        for r in self._live(s):
            if s.versions[r] != s.version:
                return (
                    f"mirror {r} on live server {s.servers[r]} holds version "
                    f"{s.versions[r]}, newest is {s.version} — a read can "
                    "return lost data"
                )
        return None

    def _check_available(self, state: State) -> str | None:
        s = _t.cast(RecoveryModelState, state)
        if not self._live(s):
            return (
                f"all {self.copies} mirrors down with only "
                f"{self.crashes - s.crashes_left} crash(es) — the declared "
                f"fault budget is {self.fault_budget}"
            )
        return None

    def _check_anti_affinity(self, state: State) -> str | None:
        s = _t.cast(RecoveryModelState, state)
        if len(set(s.servers)) != len(s.servers):
            return f"mirrors share a server: placement {s.servers}"
        return None

    def describe_state(self, state: State) -> str:
        s = _t.cast(RecoveryModelState, state)
        mirrors = " ".join(
            f"r{r}@s{sid}(v{ver}{'' if s.alive[sid] else ',dead'})"
            for r, (sid, ver) in enumerate(zip(s.servers, s.versions))
        )
        return (
            f"v{s.version} [{mirrors}] alive={s.alive} "
            f"writes_left={s.writes_left} crashes_left={s.crashes_left}"
        )

    # -- replay through the real redundancy scheme -----------------------------

    def replay(self, trace: _t.Sequence[Action]) -> ReplayResult:
        from repro.core.failures.replication import ReplicatedBuffer
        from repro.core.runtime import LmpRuntime
        from repro.mem.layout import PageGeometry
        from repro.topology.builder import build_logical
        from repro.units import kib, mib

        size = 16
        deployment = build_logical(
            "link0", server_count=self.server_count, server_dram_bytes=mib(2)
        )
        runtime = LmpRuntime(
            deployment,
            geometry=PageGeometry(page_bytes=kib(16), extent_bytes=kib(64)),
            coherent_bytes=kib(64),
            snoop_filter_lines=64,
        )
        engine = runtime.engine
        buf = ReplicatedBuffer(
            runtime.pool, size=size, copies=self.copies, home_server=0
        )
        recorder = ReplayRecorder(self.name)
        recorder.expect(
            buf.fault_budget == self.fault_budget,
            f"implementation declares fault budget {buf.fault_budget}, "
            f"model assumes {self.fault_budget}",
        )
        # stamp the initial version so reads are deterministic from step 0
        engine.run(buf.write(0, 0, _stamp(0, size)))
        state = _t.cast(RecoveryModelState, self.initial_states()[0])
        for action in trace:
            if action not in self.enabled(state):
                raise ModelCheckError(
                    f"recovery replay: {action.render()} is not enabled in "
                    f"the model at {self.describe_state(state)}"
                )
            succ = _t.cast(RecoveryModelState, self.apply(state, action))
            requester = self._lowest_live_server(state)
            if action.kind == "write":
                engine.run(buf.write(requester, 0, _stamp(succ.version, size)))
            elif action.kind == "crash":
                deployment.server(int(action.payload[0])).crash()
            elif action.kind == "repair":
                model_rebuilt = len(self._live(succ)) - len(self._live(state))
                rebuilt = engine.run(buf.repair(requester))
                recorder.expect(
                    rebuilt == model_rebuilt,
                    f"repair rebuilt {rebuilt} mirror(s), model expected "
                    f"{model_rebuilt}",
                )
            self._cross_check(buf, engine, succ, recorder, size)
            recorder.commit(action)
            if recorder.steps[-1].ok is False:
                break
            state = succ
        return recorder.result()

    def _lowest_live_server(self, s: RecoveryModelState) -> int:
        return min(sid for sid in range(self.server_count) if s.alive[sid])

    def _cross_check(
        self,
        buf: _t.Any,
        engine: _t.Any,
        s: RecoveryModelState,
        recorder: ReplayRecorder,
        size: int,
    ) -> None:
        recorder.expect(
            tuple(buf.replica_servers) == s.servers,
            f"mirrors placed on {tuple(buf.replica_servers)}, model says "
            f"{s.servers}",
        )
        recorder.expect(
            buf.live_replicas() == self._live(s),
            f"live mirrors {buf.live_replicas()}, model says {self._live(s)}",
        )
        recorder.expect(
            buf.degraded() == (len(self._live(s)) < self.copies),
            f"degraded()={buf.degraded()} disagrees with the model",
        )
        requester = self._lowest_live_server(s)
        for r in self._live(s):
            held = engine.run(buf.pool.read(requester, buf.replicas[r], 0, size))
            recorder.expect(
                held == _stamp(s.versions[r], size),
                f"mirror {r} holds stamp {held[:1].hex()}, model says "
                f"version {s.versions[r]}",
            )
        data = engine.run(buf.read(self._lowest_live_server(s), 0, size))
        recorder.expect(
            data == _stamp(s.version, size),
            f"read returned version stamp {data[:1].hex()}, newest is "
            f"{s.version} — the implementation served stale or lost data",
        )


def _stamp(version: int, size: int) -> bytes:
    """A byte pattern unique to *version* (bounded, so never truncated)."""
    return bytes([version % 251]) * size
