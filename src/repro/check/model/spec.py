"""The ``ModelSpec`` abstraction: a protocol state machine the explorer
can enumerate.

A spec is a TLA-lite description of one of the pool's protocols: a set
of initial states, an ``enabled`` relation naming the actions a state
admits, and a total ``apply`` function producing the successor state.
States must be *canonical and hashable* (tuples of tuples, frozensets
rendered as sorted tuples) so the explorer can deduplicate them; two
states that compare equal are the same protocol configuration.

Correctness properties come in three flavors:

* :class:`Invariant` — a predicate over every reachable state (SWMR,
  quota conservation, no overcommit ...).
* *final* invariants — predicates over terminal states only (no waiter
  left behind once all activity has quiesced).
* :class:`LivenessProperty` — "eventually" properties checked by lasso
  search: a reachable cycle on which ``pending`` holds throughout and
  every *fair* action is either taken or sometime-disabled is a
  counterexample (weak fairness, TLA's ``WF``).

Every spec also carries a :meth:`ModelSpec.replay` adapter that drives
the *real* implementation through a counterexample trace inside the
DES, cross-checking abstract against concrete state after every step —
the seam that keeps model and implementation from drifting silently.
"""

from __future__ import annotations

import abc
import dataclasses
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.check.model.replay import ReplayResult

#: canonical hashable protocol state
State = _t.Hashable


@dataclasses.dataclass(frozen=True)
class Action:
    """One named transition of a protocol state machine.

    ``kind`` is the action family (``store``, ``sweep``, ``crash`` ...)
    used by fairness constraints and the independence relation;
    ``payload`` carries the arguments (host, line, tenant ...) and makes
    the action unique within a state's enabled set.
    """

    kind: str
    payload: tuple[_t.Any, ...] = ()

    def render(self) -> str:
        if not self.payload:
            return self.kind
        args = ", ".join(str(p) for p in self.payload)
        return f"{self.kind}({args})"


@dataclasses.dataclass(frozen=True)
class Invariant:
    """A safety property: ``check`` returns None when *state* is legal,
    or a human-readable description of the violation."""

    name: str
    check: _t.Callable[[State], str | None]


@dataclasses.dataclass(frozen=True)
class LivenessProperty:
    """An "eventually" property checked by fair-lasso search.

    ``pending`` marks states where the obligation is outstanding (an
    expired lease still live, a fitting waiter still queued).  A cycle
    of pending states is only a counterexample if it is *weakly fair*
    to ``fair_kinds``: every fair action continuously enabled around
    the cycle must be taken on it — a cycle that merely refuses to
    schedule the sweeper is not a protocol bug, the sweeper eventually
    runs.
    """

    name: str
    pending: _t.Callable[[State], bool]
    fair_kinds: frozenset[str]
    description: str = ""


class ModelSpec(abc.ABC):
    """One protocol state machine, explorable and replayable."""

    #: registry key, also the CLI name (``repro check --model <name>``)
    name: _t.ClassVar[str] = ""
    #: one-line description rendered by the runner
    description: _t.ClassVar[str] = ""

    @abc.abstractmethod
    def initial_states(self) -> _t.Sequence[State]:
        """All initial configurations (usually one)."""

    @abc.abstractmethod
    def enabled(self, state: State) -> _t.Sequence[Action]:
        """The actions *state* admits, in deterministic order."""

    @abc.abstractmethod
    def apply(self, state: State, action: Action) -> State:
        """The successor of *state* under an enabled *action*."""

    @abc.abstractmethod
    def invariants(self) -> _t.Sequence[Invariant]:
        """Safety properties checked on every reachable state."""

    def final_invariants(self) -> _t.Sequence[Invariant]:
        """Properties of terminal states (no action enabled)."""
        return ()

    def liveness(self) -> _t.Sequence[LivenessProperty]:
        """Eventually-properties checked by fair-lasso search."""
        return ()

    def is_final(self, state: State) -> bool:
        """Whether a terminal *state* is a legal stopping point.

        A terminal state that is not final is reported as a deadlock.
        The default accepts every terminal state; specs whose protocols
        must always be able to make progress override this.
        """
        return True

    def independent(self, a: Action, b: Action) -> bool:
        """Whether *a* and *b* commute from every state enabling both.

        Drives the sleep-set partial-order reduction; the default (no
        independence) disables it.  Only declare independence for pairs
        that provably touch disjoint state components — a wrong answer
        here silently prunes transitions.
        """
        return False

    @abc.abstractmethod
    def replay(self, trace: _t.Sequence[Action]) -> "ReplayResult":
        """Drive the real implementation through *trace* inside the DES,
        cross-checking abstract and concrete state after every step."""

    def describe_state(self, state: State) -> str:
        """Render *state* for counterexample reports."""
        return repr(state)
