"""Counterexample replay: abstract traces driven through the real DES.

Every spec's :meth:`~repro.check.model.spec.ModelSpec.replay` builds a
fresh simulated world (deployment, runtime, the production subsystem
under test) and executes the counterexample's actions one by one,
cross-checking the *abstract* post-state the model predicts against the
*concrete* state the implementation reaches.  A step whose concrete
state disagrees with the model is recorded as a divergence — which is
exactly the point of replaying mutant counterexamples: the (correct)
implementation refuses to follow the modeled bug.

:func:`checked_replay` additionally runs the whole replay twice under
the PR-1 :class:`~repro.check.determinism.DeterminismHarness`, diffing
the two engines' event streams byte for byte, so every counterexample
ships with a proof that its repro is deterministic.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.check.determinism import DeterminismHarness

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.check.model.spec import Action, ModelSpec


@dataclasses.dataclass(frozen=True)
class ReplayStep:
    """One action of a trace executed against the implementation."""

    action: str  # rendered action
    ok: bool  # concrete state matched the abstract prediction
    detail: str = ""  # mismatch description when not ok

    def render(self) -> str:
        marker = "ok" if self.ok else "DIVERGED"
        suffix = f": {self.detail}" if self.detail else ""
        return f"{self.action:<28} {marker}{suffix}"


@dataclasses.dataclass
class ReplayResult:
    """Outcome of driving one trace through the real implementation."""

    spec_name: str
    steps: list[ReplayStep]
    #: None until :func:`checked_replay` has diffed two runs
    deterministic: bool | None = None
    #: engine events dispatched during one replay run
    events: int = 0

    @property
    def diverged(self) -> bool:
        return any(not step.ok for step in self.steps)

    @property
    def divergence(self) -> str:
        for step in self.steps:
            if not step.ok:
                return f"{step.action}: {step.detail}"
        return ""

    def render(self) -> str:
        if self.diverged:
            verdict = (
                "implementation DIVERGED from the model (it does not "
                "exhibit the modeled behavior)"
            )
        else:
            verdict = "implementation follows the model step for step"
        lines = [f"replay[{self.spec_name}]: {len(self.steps)} step(s) — {verdict}"]
        lines.extend(f"  {step.render()}" for step in self.steps)
        if self.deterministic is not None:
            det = "byte-identical" if self.deterministic else "NONDETERMINISTIC"
            lines.append(f"  two same-seed replays: {det} ({self.events} events)")
        return "\n".join(lines)

    def to_json(self) -> dict[str, _t.Any]:
        return {
            "spec": self.spec_name,
            "steps": [
                {"action": s.action, "ok": s.ok, "detail": s.detail}
                for s in self.steps
            ],
            "diverged": self.diverged,
            "deterministic": self.deterministic,
            "events": self.events,
        }


class ReplayRecorder:
    """Collects per-step cross-check outcomes for the replay adapters."""

    def __init__(self, spec_name: str) -> None:
        self.spec_name = spec_name
        self.steps: list[ReplayStep] = []
        self._mismatches: list[str] = []

    def expect(self, condition: bool, detail: str) -> None:
        """Record one cross-check of the pending step."""
        if not condition:
            self._mismatches.append(detail)

    def mismatch(self, detail: str) -> None:
        self._mismatches.append(detail)

    def commit(self, action: "Action") -> None:
        """Close out one replayed action with its accumulated checks."""
        self.steps.append(
            ReplayStep(
                action=action.render(),
                ok=not self._mismatches,
                detail="; ".join(self._mismatches),
            )
        )
        self._mismatches = []

    def result(self) -> ReplayResult:
        return ReplayResult(spec_name=self.spec_name, steps=self.steps)


def checked_replay(spec: "ModelSpec", trace: _t.Sequence["Action"]) -> ReplayResult:
    """Replay *trace* twice under the determinism harness.

    Returns the second run's :class:`ReplayResult` with
    ``deterministic`` set from the byte-for-byte event-stream diff —
    the same machinery ``repro check --determinism`` uses, so a model
    counterexample is a first-class deterministic repro.
    """
    results: list[ReplayResult] = []

    def scenario() -> None:
        results.append(spec.replay(trace))

    name = f"model.{spec.name}"
    harness = DeterminismHarness(scenarios={name: scenario})
    report = harness.run(name)
    result = results[-1]
    result.deterministic = report.identical
    result.events = report.events_first
    return result
