"""Explicit-state model checking for the pool's protocol state machines.

A TLA-style micro-checker: each protocol is abstracted as a
:class:`~repro.check.model.spec.ModelSpec` (initial states, enabled
actions, a pure next-state function, invariants, optional liveness),
and the :class:`~repro.check.model.explorer.Explorer` enumerates every
reachable configuration at a bounded scope — breadth-first for shortest
counterexamples, with sleep-set partial-order reduction for
safety-only specs and a fair-lasso search for liveness.

What makes this more than a toy: every spec carries a **replay
adapter** that drives its counterexamples through the real
discrete-event simulator (the production ``CoherenceDirectory``,
``PoolManager``, ``AdmissionController.decide``, ``ReplicatedBuffer``)
and cross-checks the abstract prediction against concrete state step by
step, under the determinism harness — so a model violation ships as a
deterministic repro, and a model that drifts from the implementation is
caught as a divergence.  ``repro check --model`` wires it into the
static-analysis runner; :mod:`repro.check.model.mutants` keeps the
checker honest by seeding known protocol bugs and demanding they are
caught.
"""

from __future__ import annotations

import typing as _t

from repro.check.model.admission import AdmissionSpec
from repro.check.model.coherence import CoherenceSpec
from repro.check.model.explorer import (
    ExplorationResult,
    Explorer,
    ModelViolation,
    minimize_trace,
)
from repro.check.model.leases import LeaseSpec
from repro.check.model.recovery import RecoverySpec
from repro.check.model.replay import (
    ReplayRecorder,
    ReplayResult,
    ReplayStep,
    checked_replay,
)
from repro.check.model.spec import (
    Action,
    Invariant,
    LivenessProperty,
    ModelSpec,
    State,
)
from repro.errors import ModelCheckError

#: exploration scopes every spec understands
SCOPES: tuple[str, ...] = ("smoke", "deep")

#: registry the runner and CLI resolve ``--model`` names against
SPECS: dict[str, _t.Callable[[str], ModelSpec]] = {
    CoherenceSpec.name: CoherenceSpec.at_scope,
    LeaseSpec.name: LeaseSpec.at_scope,
    AdmissionSpec.name: AdmissionSpec.at_scope,
    RecoverySpec.name: RecoverySpec.at_scope,
}


def build_spec(name: str, scope: str = "smoke") -> ModelSpec:
    """Instantiate a registered spec at *scope*; raises on unknown names."""
    try:
        factory = SPECS[name]
    except KeyError:
        known = ", ".join(sorted(SPECS))
        raise ModelCheckError(f"unknown model spec {name!r} (known: {known})") from None
    if scope not in SCOPES:
        raise ModelCheckError(f"unknown scope {scope!r} (known: {', '.join(SCOPES)})")
    return factory(scope)


__all__ = [
    "Action",
    "AdmissionSpec",
    "CoherenceSpec",
    "ExplorationResult",
    "Explorer",
    "Invariant",
    "LeaseSpec",
    "LivenessProperty",
    "ModelSpec",
    "ModelViolation",
    "RecoverySpec",
    "ReplayRecorder",
    "ReplayResult",
    "ReplayStep",
    "SCOPES",
    "SPECS",
    "State",
    "build_spec",
    "checked_replay",
    "minimize_trace",
]
