"""Explicit-state exploration: BFS/DFS, sleep sets, invariants, lassos.

The explorer enumerates every state a :class:`~repro.check.model.spec.
ModelSpec` can reach inside the configured scope, checking invariants
on each new state, flagging terminal states that are not legal stopping
points as deadlocks, and — after the state graph is complete — hunting
*fair lassos* for the spec's liveness properties (a reachable cycle on
which an obligation stays pending forever despite weak fairness).

Reduction: *sleep sets* (Godefroid).  A sleep set prunes transitions
whose interleaving is provably redundant with an already-explored
independent action; every reachable **state** is still visited, so
invariant and deadlock checking stay exact — the reduction only saves
transitions.  Because pruned edges could hide cycles, sleep sets are
disabled automatically while liveness properties are being checked.

Counterexamples: BFS parent links give a shortest trace to any
violating state; :func:`minimize_trace` then greedily deletes actions
that are not needed to re-derive the violation, so the replayed DES
repro is as small as the protocol allows.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t

from repro.check.model.spec import Action, Invariant, LivenessProperty, ModelSpec, State
from repro.errors import ModelCheckError


@dataclasses.dataclass(frozen=True)
class ModelViolation:
    """One property violation with its (minimized) counterexample."""

    kind: str  # "invariant" | "deadlock" | "final" | "liveness"
    property: str
    message: str
    trace: tuple[Action, ...]
    state: str  # rendered violating state
    cycle: tuple[Action, ...] = ()  # liveness only: the unfair-forever loop

    def render(self) -> str:
        lines = [f"{self.kind} violation: {self.property}", f"  {self.message}"]
        if self.trace:
            lines.append(f"  trace ({len(self.trace)} action(s)):")
            lines.extend(f"    {i + 1}. {a.render()}" for i, a in enumerate(self.trace))
        else:
            lines.append("  trace: <initial state>")
        if self.cycle:
            lines.append(f"  then forever ({len(self.cycle)} action(s)):")
            lines.extend(f"    ... {a.render()}" for a in self.cycle)
        lines.append(f"  state: {self.state}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, _t.Any]:
        return {
            "kind": self.kind,
            "property": self.property,
            "message": self.message,
            "trace": [a.render() for a in self.trace],
            "cycle": [a.render() for a in self.cycle],
            "state": self.state,
        }


@dataclasses.dataclass
class ExplorationResult:
    """Outcome of exhaustively exploring one spec."""

    spec_name: str
    states: int
    transitions: int
    depth: int
    complete: bool  # False when a state or depth cap truncated the search
    por_used: bool
    liveness_checked: bool
    violations: list[ModelViolation]

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        scope = "exhaustively explored" if self.complete else "explored (TRUNCATED)"
        summary = (
            f"{self.spec_name}: {scope} {self.states} state(s) / "
            f"{self.transitions} transition(s), depth {self.depth}"
            f"{', sleep-set POR' if self.por_used else ''}"
        )
        if self.ok:
            checks = "invariants + deadlock"
            if self.liveness_checked:
                checks += " + liveness"
            return f"{summary} — {checks} hold"
        parts = [f"{summary} — {len(self.violations)} violation(s)"]
        parts.extend(v.render() for v in self.violations)
        return "\n".join(parts)


class Explorer:
    """Explores one spec's state space; see the module docstring."""

    def __init__(
        self,
        spec: ModelSpec,
        max_depth: int | None = None,
        max_states: int = 200_000,
        por: bool = True,
        strategy: str = "bfs",
    ) -> None:
        if strategy not in ("bfs", "dfs"):
            raise ModelCheckError(f"unknown exploration strategy {strategy!r}")
        if max_states < 1:
            raise ModelCheckError(f"max_states must be >= 1, got {max_states}")
        self.spec = spec
        self.max_depth = max_depth
        self.max_states = max_states
        self.strategy = strategy
        # pruned edges could hide liveness cycles: full graph when needed
        self.por = por and not spec.liveness()
        self._ids: dict[State, int] = {}
        self._states: list[State] = []
        self._depth: list[int] = []
        self._parent: list[tuple[int, Action] | None] = []
        self._sleep: list[frozenset[Action]] = []
        self._explored: list[set[Action]] = []
        self._edges: list[tuple[int, int, Action]] = []

    # -- state bookkeeping ---------------------------------------------------

    def _intern(self, state: State, depth: int, parent: tuple[int, Action] | None) -> int:
        sid = self._ids.get(state)
        if sid is None:
            sid = len(self._states)
            self._ids[state] = sid
            self._states.append(state)
            self._depth.append(depth)
            self._parent.append(parent)
            self._sleep.append(frozenset())
            self._explored.append(set())
        return sid

    def _trace_to(self, sid: int) -> tuple[Action, ...]:
        actions: list[Action] = []
        cursor: int | None = sid
        while cursor is not None:
            link = self._parent[cursor]
            if link is None:
                cursor = None
            else:
                cursor, action = link
                actions.append(action)
        actions.reverse()
        return tuple(actions)

    # -- the search ----------------------------------------------------------

    def run(self) -> ExplorationResult:
        spec = self.spec
        invariants = tuple(spec.invariants())
        violations: list[ModelViolation] = []
        transitions = 0
        complete = True

        frontier: collections.deque[int] = collections.deque()
        for initial in spec.initial_states():
            sid = self._intern(initial, 0, None)
            bad = self._check_invariants(invariants, sid)
            if bad is not None:
                return self._result(transitions, True, [bad])
            frontier.append(sid)

        while frontier:
            sid = frontier.popleft() if self.strategy == "bfs" else frontier.pop()
            state = self._states[sid]
            depth = self._depth[sid]
            enabled = list(spec.enabled(state))
            if not enabled:
                terminal_bad = self._check_terminal(sid)
                if terminal_bad is not None:
                    return self._result(transitions, complete, [terminal_bad])
                continue
            if self.max_depth is not None and depth >= self.max_depth:
                complete = False
                continue
            sleep = self._sleep[sid]
            done_before: list[Action] = []
            for action in enabled:
                if action in self._explored[sid]:
                    done_before.append(action)
                    continue
                if self.por and action in sleep:
                    continue
                self._explored[sid].add(action)
                successor = spec.apply(state, action)
                transitions += 1
                child_sleep = frozenset(
                    other
                    for other in (set(sleep) | set(done_before))
                    if spec.independent(action, other)
                )
                known = successor in self._ids
                tid = self._intern(successor, depth + 1, (sid, action))
                self._edges.append((sid, tid, action))
                if not known:
                    bad = self._check_invariants(invariants, tid)
                    if bad is not None:
                        return self._result(transitions, complete, [bad])
                    if len(self._states) >= self.max_states:
                        return self._result(transitions, False, violations)
                    self._sleep[tid] = child_sleep
                    frontier.append(tid)
                elif self.por:
                    # revisit with a smaller sleep set: wake the pruned
                    # actions so no state's outgoing transitions are lost
                    merged = self._sleep[tid] & child_sleep
                    if merged != self._sleep[tid]:
                        self._sleep[tid] = merged
                        frontier.append(tid)
                done_before.append(action)

        liveness_checked = False
        if complete:
            for prop in spec.liveness():
                liveness_checked = True
                lasso = self._find_fair_lasso(prop)
                if lasso is not None:
                    violations.append(lasso)
        return self._result(transitions, complete, violations, liveness_checked)

    def _result(
        self,
        transitions: int,
        complete: bool,
        violations: list[ModelViolation],
        liveness_checked: bool = False,
    ) -> ExplorationResult:
        return ExplorationResult(
            spec_name=self.spec.name,
            states=len(self._states),
            transitions=transitions,
            depth=max(self._depth, default=0),
            complete=complete,
            por_used=self.por,
            liveness_checked=liveness_checked,
            violations=violations,
        )

    # -- property checks -----------------------------------------------------

    def _check_invariants(
        self, invariants: tuple[Invariant, ...], sid: int
    ) -> ModelViolation | None:
        state = self._states[sid]
        for invariant in invariants:
            detail = invariant.check(state)
            if detail is not None:
                trace = minimize_trace(
                    self.spec,
                    self._initial_of(sid),
                    self._trace_to(sid),
                    lambda s, inv=invariant: inv.check(s) is not None,  # type: ignore[misc]
                )
                return ModelViolation(
                    kind="invariant",
                    property=invariant.name,
                    message=detail,
                    trace=trace,
                    state=self.spec.describe_state(state),
                )
        return None

    def _check_terminal(self, sid: int) -> ModelViolation | None:
        state = self._states[sid]
        if not self.spec.is_final(state):
            trace = minimize_trace(
                self.spec,
                self._initial_of(sid),
                self._trace_to(sid),
                lambda s: not list(self.spec.enabled(s)) and not self.spec.is_final(s),
            )
            return ModelViolation(
                kind="deadlock",
                property="no-deadlock",
                message="terminal state is not a legal stopping point",
                trace=trace,
                state=self.spec.describe_state(state),
            )
        for invariant in self.spec.final_invariants():
            detail = invariant.check(state)
            if detail is not None:
                trace = minimize_trace(
                    self.spec,
                    self._initial_of(sid),
                    self._trace_to(sid),
                    lambda s, inv=invariant: (  # type: ignore[misc]
                        not list(self.spec.enabled(s)) and inv.check(s) is not None
                    ),
                )
                return ModelViolation(
                    kind="final",
                    property=invariant.name,
                    message=detail,
                    trace=trace,
                    state=self.spec.describe_state(state),
                )
        return None

    def _initial_of(self, sid: int) -> State:
        cursor = sid
        while self._parent[cursor] is not None:
            link = self._parent[cursor]
            assert link is not None
            cursor = link[0]
        return self._states[cursor]

    # -- liveness: fair-lasso search over the explored graph -------------------

    def _find_fair_lasso(self, prop: LivenessProperty) -> ModelViolation | None:
        """A strongly connected pending-subgraph component is a
        counterexample when every fair action kind continuously enabled
        across it is taken inside it (weak fairness cannot escape)."""
        pending = {
            sid for sid, state in enumerate(self._states) if prop.pending(state)
        }
        if not pending:
            return None
        adjacency: dict[int, list[tuple[int, Action]]] = {sid: [] for sid in pending}
        self_loops: set[int] = set()
        for src, dst, action in self._edges:
            if src in pending and dst in pending:
                adjacency[src].append((dst, action))
                if src == dst:
                    self_loops.add(src)
        for component in _tarjan_sccs(adjacency):
            members = set(component)
            if len(members) == 1 and next(iter(component)) not in self_loops:
                continue  # a single node with no self-loop is not a cycle
            taken = {
                action.kind
                for src, dst, action in self._edges
                if src in members and dst in members
            }
            fair = True
            for kind in sorted(prop.fair_kinds):
                continuously_enabled = all(
                    any(a.kind == kind for a in self.spec.enabled(self._states[sid]))
                    for sid in sorted(members)
                )
                if continuously_enabled and kind not in taken:
                    fair = False  # fairness would eventually fire this action
                    break
            if not fair:
                continue
            entry = min(sorted(members), key=lambda sid: self._depth[sid])
            cycle = self._cycle_within(entry, members)
            return ModelViolation(
                kind="liveness",
                property=prop.name,
                message=(
                    prop.description
                    or f"obligation stays pending around a fair cycle of "
                    f"{len(members)} state(s)"
                ),
                trace=self._trace_to(entry),
                state=self.spec.describe_state(self._states[entry]),
                cycle=cycle,
            )
        return None

    def _cycle_within(self, entry: int, members: set[int]) -> tuple[Action, ...]:
        """A shortest closed walk from *entry* back to itself inside the
        component, for the counterexample report."""
        adjacency: dict[int, list[tuple[int, Action]]] = {sid: [] for sid in members}
        for src, dst, action in self._edges:
            if src in members and dst in members:
                adjacency[src].append((dst, action))
        # BFS from entry's successors back to entry
        best: tuple[Action, ...] | None = None
        for first_dst, first_action in adjacency[entry]:
            if first_dst == entry:
                return (first_action,)
            back: dict[int, tuple[int, Action]] = {}
            queue: collections.deque[int] = collections.deque([first_dst])
            seen = {first_dst}
            while queue:
                sid = queue.popleft()
                if sid == entry:
                    break
                for dst, action in adjacency[sid]:
                    if dst not in seen:
                        seen.add(dst)
                        back[dst] = (sid, action)
                        queue.append(dst)
            if entry in back or entry in seen:
                walk: list[Action] = []
                cursor = entry
                while cursor != first_dst:
                    cursor, action = back[cursor]
                    walk.append(action)
                walk.append(first_action)
                walk.reverse()
                candidate = tuple(walk)
                if best is None or len(candidate) < len(best):
                    best = candidate
        return best or ()


def _tarjan_sccs(
    adjacency: dict[int, list[tuple[int, Action]]]
) -> list[list[int]]:
    """Iterative Tarjan: strongly connected components of *adjacency*."""
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0

    for root in sorted(adjacency):
        if root in index:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, child_pos = work[-1]
            if child_pos == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = adjacency.get(node, [])
            for pos in range(child_pos, len(successors)):
                succ = successors[pos][0]
                if succ not in index:
                    work[-1] = (node, pos + 1)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def minimize_trace(
    spec: ModelSpec,
    initial: State,
    trace: _t.Sequence[Action],
    still_violates: _t.Callable[[State], bool],
) -> tuple[Action, ...]:
    """Greedily delete actions a counterexample does not need.

    A candidate survives when every remaining action is still enabled
    in sequence from *initial* and the final state still satisfies
    *still_violates*.  BFS already yields a shortest trace; this pass
    removes commuting noise (another tenant's unrelated ops) so the DES
    replay is as focused as the protocol allows.
    """

    def final_state(candidate: _t.Sequence[Action]) -> State | None:
        state = initial
        for action in candidate:
            if action not in spec.enabled(state):
                return None
            state = spec.apply(state, action)
        return state

    current = list(trace)
    shrunk = True
    while shrunk:
        shrunk = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1 :]
            state = final_state(candidate)
            if state is not None and still_violates(state):
                current = candidate
                shrunk = True
                break
    return tuple(current)
