"""Spec 3: admission control — grant / queue / reject against quotas.

This spec is the tightest adapter seam of the four: its next-state
function calls the **production**
:meth:`~repro.cluster.admission.AdmissionController.decide` (a pure
function over explicit inputs) on a :class:`TenantState` reconstructed
from the abstract configuration, then mirrors the
:class:`~repro.cluster.manager.PoolManager` grant / park / reject /
head-of-line service machinery around the verdict.  One capacity unit
stands for one extent; the replay adapter scales by the real extent and
burns the pool down with pinned ballast so concrete free capacity
matches the model's unit ledger byte for byte.

Checked invariants:

* **no-overcommit** — granted units never exceed capacity; free never
  goes negative; per-tenant usage equals the grants held.
* **quota bound** — no tenant is granted past its quota.
* **no lost wakeup** — whenever the system is quiescent, a waiter at
  the head of the queue does not fit (``head.size > free``); a fitting
  head would mean a release forgot to service the queue.
* **queue well-formed** — sorted by (priority, arrival), within the
  depth bound, and free of revoked waiters.

Terminal states additionally satisfy **no stranded waiter** (the queue
drains).  All actions consume a bounded budget, so the reachable graph
is a DAG and no liveness search is needed.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.check.model.replay import ReplayRecorder, ReplayResult
from repro.check.model.spec import Action, Invariant, ModelSpec, State
from repro.cluster.admission import AdmissionController, Decision
from repro.cluster.tenants import PriorityClass, TenantSpec, TenantState
from repro.errors import (
    AdmissionError,
    ModelCheckError,
    QuotaExceededError,
    TenantRevokedError,
)

#: waiter tuple: (-priority, arrival seq, tenant, size) — the sort key
#: mirrors the manager's ``_Waiter.order``
Waiter = tuple[int, int, int, int]


@dataclasses.dataclass(frozen=True)
class AdmissionModelState:
    """Canonical admission-control configuration (sizes in units)."""

    free: int
    used: tuple[int, ...]
    #: per tenant: sorted multiset of granted sizes
    grants: tuple[tuple[int, ...], ...]
    revoked: tuple[bool, ...]
    queue: tuple[Waiter, ...]
    seq: int
    #: per tenant: requests it may still issue
    budget: tuple[int, ...]
    revokes_left: int


class AdmissionSpec(ModelSpec):
    """Model of request / release / revoke around the real ``decide``."""

    name = "admission"
    description = "admission control: overcommit, quota, lost wakeups"

    #: mutant hooks — the base spec mirrors the implementation
    enforce_quota: _t.ClassVar[bool] = True
    service_queue_on_release: _t.ClassVar[bool] = True

    def __init__(
        self,
        capacity: int = 3,
        quota: int = 2,
        request_budget: int = 2,
        max_queue_depth: int = 1,
        revoke_budget: int = 1,
        priorities: tuple[PriorityClass, ...] = (
            PriorityClass.GUARANTEED,
            PriorityClass.STANDARD,
        ),
        sizes: tuple[int, ...] = (1, 2),
    ) -> None:
        if min(capacity, quota, request_budget) < 1 or min(sizes) < 1:
            raise ModelCheckError("admission scope parameters must be positive")
        self.capacity = capacity
        self.quota = quota
        self.request_budget = request_budget
        self.max_queue_depth = max_queue_depth
        self.revoke_budget = revoke_budget
        self.priorities = priorities
        self.sizes = sizes
        self.tenants = len(priorities)
        self.controller = AdmissionController(max_queue_depth=max_queue_depth)

    @classmethod
    def at_scope(cls, scope: str) -> "AdmissionSpec":
        if scope == "smoke":
            return cls()
        if scope == "deep":
            return cls(request_budget=3, max_queue_depth=2, revoke_budget=2)
        raise ModelCheckError(f"unknown scope {scope!r} (known: smoke, deep)")

    # -- the real decision function on abstract state -------------------------

    def _tenant_state(self, s: AdmissionModelState, tenant: int) -> TenantState:
        spec = TenantSpec(
            tenant_id=f"t{tenant}",
            home_server=0,
            quota_bytes=self.quota,
            priority=self.priorities[tenant],
        )
        state = TenantState(spec)
        state.used_bytes = s.used[tenant]
        if s.revoked[tenant]:
            state.revoked = True
            state.revoke_reason = "modeled revocation"
        return state

    def _decide(self, s: AdmissionModelState, tenant: int, size: int) -> Decision:
        verdict = self.controller.decide(
            self._tenant_state(s, tenant), size, s.free, len(s.queue)
        )
        decision = verdict.decision
        if decision is Decision.REJECT_QUOTA and not self.enforce_quota:
            # mutant hook: an admission policy that forgets the quota check
            if size <= s.free:
                decision = Decision.GRANT
            elif (
                self.priorities[tenant].may_queue
                and len(s.queue) < self.max_queue_depth
            ):
                decision = Decision.QUEUE
            else:
                decision = Decision.REJECT_CAPACITY
        return decision

    # -- the state machine ---------------------------------------------------

    def initial_states(self) -> _t.Sequence[State]:
        n = self.tenants
        return [
            AdmissionModelState(
                free=self.capacity,
                used=(0,) * n,
                grants=((),) * n,
                revoked=(False,) * n,
                queue=(),
                seq=0,
                budget=(self.request_budget,) * n,
                revokes_left=self.revoke_budget,
            )
        ]

    def enabled(self, state: State) -> _t.Sequence[Action]:
        s = _t.cast(AdmissionModelState, state)
        actions: list[Action] = []
        for tenant in range(self.tenants):
            if s.budget[tenant] > 0:
                for size in self.sizes:
                    actions.append(Action("request", (tenant, size)))
            for size in sorted(set(s.grants[tenant])):
                actions.append(Action("release", (tenant, size)))
            if not s.revoked[tenant] and s.revokes_left > 0:
                actions.append(Action("revoke", (tenant,)))
        return actions

    def apply(self, state: State, action: Action) -> State:
        s = _t.cast(AdmissionModelState, state)
        if action.kind == "request":
            return self._apply_request(s, int(action.payload[0]), int(action.payload[1]))
        if action.kind == "release":
            return self._apply_release(s, int(action.payload[0]), int(action.payload[1]))
        if action.kind == "revoke":
            return self._apply_revoke(s, int(action.payload[0]))
        raise ModelCheckError(f"admission: unknown action {action.render()}")

    def _apply_request(
        self, s: AdmissionModelState, tenant: int, size: int
    ) -> AdmissionModelState:
        s = dataclasses.replace(s, budget=_bump(s.budget, tenant, -1))
        decision = self._decide(s, tenant, size)
        if decision is Decision.GRANT:
            return dataclasses.replace(
                s,
                free=s.free - size,
                used=_bump(s.used, tenant, size),
                grants=_grant(s.grants, tenant, size),
            )
        if decision is Decision.QUEUE:
            waiter: Waiter = (-int(self.priorities[tenant]), s.seq, tenant, size)
            return dataclasses.replace(
                s, queue=tuple(sorted(s.queue + (waiter,))), seq=s.seq + 1
            )
        return s  # a rejection leaves the ledger untouched

    def _apply_release(
        self, s: AdmissionModelState, tenant: int, size: int
    ) -> AdmissionModelState:
        s = dataclasses.replace(
            s,
            free=s.free + size,
            used=_bump(s.used, tenant, -size),
            grants=_ungrant(s.grants, tenant, size),
        )
        if self.service_queue_on_release:
            s = self._service(s)  # the wakeup a release owes the queue
        return s

    def _apply_revoke(self, s: AdmissionModelState, tenant: int) -> AdmissionModelState:
        reclaimed = sum(s.grants[tenant])
        s = dataclasses.replace(
            s,
            free=s.free + reclaimed,
            used=_bump(s.used, tenant, -s.used[tenant]),
            grants=tuple(
                () if i == tenant else row for i, row in enumerate(s.grants)
            ),
            revoked=tuple(
                True if i == tenant else flag for i, flag in enumerate(s.revoked)
            ),
            queue=tuple(w for w in s.queue if w[2] != tenant),
            revokes_left=s.revokes_left - 1,
        )
        return self._service(s)

    def _service(self, s: AdmissionModelState) -> AdmissionModelState:
        """Mirror of ``PoolManager._service_queue``: head-of-line, pop
        revoked waiters, fail over-quota heads, stop when the head does
        not fit."""
        queue = list(s.queue)
        free = s.free
        used = list(s.used)
        grants = [list(row) for row in s.grants]
        while queue:
            _prio, _seq, tenant, size = queue[0]
            if s.revoked[tenant]:
                queue.pop(0)
                continue
            if size > free:
                break
            queue.pop(0)
            if size > self.quota - used[tenant]:
                continue  # _grant raises QuotaExceededError; the waiter fails
            free -= size
            used[tenant] += size
            grants[tenant] = sorted(grants[tenant] + [size])
        return dataclasses.replace(
            s,
            queue=tuple(queue),
            free=free,
            used=tuple(used),
            grants=tuple(tuple(row) for row in grants),
        )

    # -- properties ----------------------------------------------------------

    def invariants(self) -> _t.Sequence[Invariant]:
        return (
            Invariant("no-overcommit", self._check_conservation),
            Invariant("quota-bound", self._check_quota),
            Invariant("no-lost-wakeup", self._check_wakeup),
            Invariant("queue-well-formed", self._check_queue),
        )

    def _check_conservation(self, state: State) -> str | None:
        s = _t.cast(AdmissionModelState, state)
        if s.free < 0:
            return f"free capacity is negative ({s.free})"
        if s.free + sum(s.used) != self.capacity:
            return (
                f"{sum(s.used)} unit(s) granted with {s.free} free on a "
                f"{self.capacity}-unit pool — capacity overcommitted or leaked"
            )
        for tenant in range(self.tenants):
            if s.used[tenant] != sum(s.grants[tenant]):
                return (
                    f"tenant {tenant}: ledger {s.used[tenant]} != grants "
                    f"{sum(s.grants[tenant])}"
                )
        return None

    def _check_quota(self, state: State) -> str | None:
        s = _t.cast(AdmissionModelState, state)
        for tenant in range(self.tenants):
            if s.used[tenant] > self.quota:
                return (
                    f"tenant {tenant} granted {s.used[tenant]} unit(s), "
                    f"quota is {self.quota}"
                )
        return None

    def _check_wakeup(self, state: State) -> str | None:
        s = _t.cast(AdmissionModelState, state)
        if s.queue and s.queue[0][3] <= s.free:
            _prio, _seq, tenant, size = s.queue[0]
            return (
                f"waiter (tenant {tenant}, {size} unit(s)) fits in {s.free} "
                "free unit(s) but was never woken — lost wakeup"
            )
        return None

    def _check_queue(self, state: State) -> str | None:
        s = _t.cast(AdmissionModelState, state)
        if list(s.queue) != sorted(s.queue):
            return "queue is not in (priority, arrival) order"
        if len(s.queue) > self.max_queue_depth:
            return f"queue depth {len(s.queue)} exceeds bound {self.max_queue_depth}"
        for _prio, _seq, tenant, _size in s.queue:
            if s.revoked[tenant]:
                return f"revoked tenant {tenant} still has a queued waiter"
        return None

    def final_invariants(self) -> _t.Sequence[Invariant]:
        def no_stranded_waiter(state: State) -> str | None:
            s = _t.cast(AdmissionModelState, state)
            if s.queue:
                return f"{len(s.queue)} waiter(s) stranded at termination"
            return None

        return (Invariant("no-stranded-waiter", no_stranded_waiter),)

    def describe_state(self, state: State) -> str:
        s = _t.cast(AdmissionModelState, state)
        queue = " ".join(f"(t{t},{sz}u)" for _p, _q, t, sz in s.queue)
        return (
            f"free={s.free} used={s.used} grants={s.grants} queue=[{queue}] "
            f"revoked={s.revoked} budget={s.budget}"
        )

    # -- replay through the real control plane ---------------------------------

    def replay(self, trace: _t.Sequence[Action]) -> ReplayResult:
        from repro.cluster.manager import PoolManager
        from repro.core.runtime import LmpRuntime
        from repro.mem.interleave import PinnedPlacement
        from repro.mem.layout import PageGeometry
        from repro.topology.builder import build_logical
        from repro.units import kib, mib

        extent = kib(64)
        deployment = build_logical("link0", server_count=2, server_dram_bytes=mib(2))
        runtime = LmpRuntime(
            deployment,
            geometry=PageGeometry(page_bytes=kib(16), extent_bytes=extent),
            coherent_bytes=kib(64),
            snoop_filter_lines=64,
        )
        engine = runtime.engine
        manager = PoolManager(
            runtime,
            admission=AdmissionController(max_queue_depth=self.max_queue_depth),
        )
        for tenant in range(self.tenants):
            manager.register_tenant(
                TenantSpec(
                    tenant_id=f"t{tenant}",
                    home_server=0,
                    quota_bytes=self.quota * extent,
                    priority=self.priorities[tenant],
                )
            )
        recorder = ReplayRecorder(self.name)
        # burn the pool down so exactly `capacity` extents stay free: the
        # model's unit ledger then matches concrete bytes with zero slack
        potential = runtime.pool.potential_free_by_server()
        for sid in sorted(potential):
            leave = self.capacity * extent if sid == 0 else 0
            ballast = ((potential[sid] - leave) // extent) * extent
            if ballast > 0:
                runtime.pool.allocate(
                    ballast,
                    requester_id=sid,
                    name=f"ballast{sid}",
                    placement=PinnedPlacement(sid),
                )
        slack = manager.pool_free_bytes() - self.capacity * extent
        recorder.expect(
            0 <= slack < extent,
            f"ballast left {slack}B of slack (needs [0, {extent})B)",
        )
        # replay-side ledgers: held leases per (tenant, size) and parked waiters
        held: dict[tuple[int, int], list[_t.Any]] = {}
        parked: list[tuple[int, int, _t.Any]] = []  # (tenant, size, process)
        state = _t.cast(AdmissionModelState, self.initial_states()[0])
        for action in trace:
            if action not in self.enabled(state):
                raise ModelCheckError(
                    f"admission replay: {action.render()} is not enabled in "
                    f"the model at {self.describe_state(state)}"
                )
            succ = _t.cast(AdmissionModelState, self.apply(state, action))
            if action.kind == "request":
                tenant, size = int(action.payload[0]), int(action.payload[1])
                decision = self._decide(
                    dataclasses.replace(state, budget=_bump(state.budget, tenant, -1)),
                    tenant,
                    size,
                )
                process = manager.acquire(f"t{tenant}", size * extent)
                process.defuse()  # we inspect failures ourselves
                if decision is Decision.QUEUE:
                    engine.run(None)
                    recorder.expect(
                        not process.triggered,
                        f"t{tenant} request parked in the model but "
                        "concluded in the implementation",
                    )
                    parked.append((tenant, size, process))
                elif decision is Decision.GRANT:
                    try:
                        lease = engine.run(process)
                    except (AdmissionError, TenantRevokedError) as exc:
                        recorder.mismatch(
                            f"model grants t{tenant} {size}u but the "
                            f"implementation rejected: {type(exc).__name__}"
                        )
                    else:
                        held.setdefault((tenant, size), []).append(lease)
                else:
                    self._expect_rejection(engine, process, decision, recorder)
            elif action.kind == "release":
                tenant, size = int(action.payload[0]), int(action.payload[1])
                lease = held[(tenant, size)].pop()
                manager.release(lease)
                engine.run(None)
            elif action.kind == "revoke":
                tenant = int(action.payload[0])
                manager.revoke_tenant(f"t{tenant}", reason="modeled revocation")
                engine.run(None)
            parked = self._settle_waiters(parked, succ, held, recorder)
            self._cross_check(manager, succ, recorder, extent, slack)
            recorder.commit(action)
            if recorder.steps[-1].ok is False:
                break
            state = succ
        return recorder.result()

    def _expect_rejection(
        self,
        engine: _t.Any,
        process: _t.Any,
        decision: Decision,
        recorder: ReplayRecorder,
    ) -> None:
        expected = {
            Decision.REJECT_QUOTA: QuotaExceededError,
            Decision.REJECT_REVOKED: TenantRevokedError,
            Decision.REJECT_CAPACITY: AdmissionError,
        }[decision]
        try:
            engine.run(process)
        except AdmissionError as exc:
            if decision is Decision.REJECT_CAPACITY and isinstance(
                exc, QuotaExceededError
            ):
                recorder.mismatch("capacity rejection surfaced as a quota error")
            elif not isinstance(exc, expected):
                recorder.mismatch(
                    f"rejection raised {type(exc).__name__}, model says "
                    f"{decision.value}"
                )
        except TenantRevokedError as exc:
            if not isinstance(exc, expected):
                recorder.mismatch(
                    f"rejection raised {type(exc).__name__}, model says "
                    f"{decision.value}"
                )
        else:
            recorder.mismatch(
                f"request succeeded, model says {decision.value}"
            )

    def _settle_waiters(
        self,
        parked: list[tuple[int, int, _t.Any]],
        succ: AdmissionModelState,
        held: dict[tuple[int, int], list[_t.Any]],
        recorder: ReplayRecorder,
    ) -> list[tuple[int, int, _t.Any]]:
        """Reconcile parked acquire processes against the model's queue."""
        queued = [(w[2], w[3]) for w in succ.queue]
        still_parked: list[tuple[int, int, _t.Any]] = []
        for tenant, size, process in parked:
            if not process.triggered:
                if (tenant, size) in queued:
                    queued.remove((tenant, size))
                    still_parked.append((tenant, size, process))
                else:
                    recorder.mismatch(
                        f"t{tenant} waiter ({size}u) still parked; the model "
                        "has concluded it"
                    )
                continue
            if (tenant, size) in queued:
                recorder.mismatch(
                    f"t{tenant} waiter ({size}u) concluded; the model still "
                    "queues it"
                )
                continue
            if process.ok:
                held.setdefault((tenant, size), []).append(process.value)
        recorder.expect(
            not queued,
            f"model queues {queued} with no matching parked process",
        )
        return still_parked

    def _cross_check(
        self,
        manager: _t.Any,
        s: AdmissionModelState,
        recorder: ReplayRecorder,
        extent: int,
        slack: int,
    ) -> None:
        free = manager.pool_free_bytes() - slack
        recorder.expect(
            free == s.free * extent,
            f"pool has {free}B free (net of ballast), model says "
            f"{s.free * extent}B",
        )
        recorder.expect(
            manager.queue_depth == len(s.queue),
            f"queue depth {manager.queue_depth}, model says {len(s.queue)}",
        )
        for tenant in range(self.tenants):
            tid = f"t{tenant}"
            used = manager.tenant(tid).used_bytes
            recorder.expect(
                used == s.used[tenant] * extent,
                f"{tid}: ledger {used}B, model says {s.used[tenant] * extent}B",
            )
            recorder.expect(
                manager.tenant(tid).revoked == s.revoked[tenant],
                f"{tid}: revoked={manager.tenant(tid).revoked}, model says "
                f"{s.revoked[tenant]}",
            )


def _bump(row: tuple[int, ...], index: int, delta: int) -> tuple[int, ...]:
    return tuple(v + delta if i == index else v for i, v in enumerate(row))


def _grant(
    grants: tuple[tuple[int, ...], ...], tenant: int, size: int
) -> tuple[tuple[int, ...], ...]:
    return tuple(
        tuple(sorted(row + (size,))) if i == tenant else row
        for i, row in enumerate(grants)
    )


def _ungrant(
    grants: tuple[tuple[int, ...], ...], tenant: int, size: int
) -> tuple[tuple[int, ...], ...]:
    out = []
    for i, row in enumerate(grants):
        if i == tenant:
            items = list(row)
            items.remove(size)
            out.append(tuple(items))
        else:
            out.append(row)
    return tuple(out)
