"""Spec 1: the MSI coherence directory over N lines × M sharers.

Abstracts :class:`~repro.core.coherence.protocol.CoherenceDirectory` to
its protocol skeleton — the directory (owner + sharer set per line),
the authoritative values, and each host's cached copy — with timing,
queueing, and snoop-filter capacity erased.  Each host gets a small
budget of load/store/rmw operations (evictions are free environment
moves), which bounds the state space while covering every interleaving
of the protocol's transitions at that scope.

Checked invariants:

* **SWMR** — a line with an M owner has exactly that one cached copy.
* **directory agreement** — a host caches a line iff the directory
  tracks it (as owner or sharer).
* **no stale read** — every cached copy equals the authoritative value,
  so a local cache hit can never return stale data.

The replay adapter drives a real :class:`CoherenceDirectory` through
the counterexample and cross-checks
:meth:`~repro.core.coherence.protocol.CoherenceDirectory.entry_view`,
``peek`` and ``cached_lines`` after every action.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.check.model.replay import ReplayRecorder, ReplayResult
from repro.check.model.spec import Action, Invariant, ModelSpec, State
from repro.errors import ModelCheckError

#: store/rmw values cycle through a tiny domain to bound the state space
VALUE_MOD = 3


@dataclasses.dataclass(frozen=True)
class CoherenceState:
    """Canonical protocol configuration (all fields nested tuples)."""

    #: per line: M owner or None
    owners: tuple[int | None, ...]
    #: per line: sorted sharer hosts
    sharers: tuple[tuple[int, ...], ...]
    #: per line: authoritative value at the home
    values: tuple[int, ...]
    #: per host, per line: the value the host's cache holds (None = not cached)
    caches: tuple[tuple[int | None, ...], ...]
    #: per host: load/store/rmw operations remaining
    budget: tuple[int, ...]


class CoherenceSpec(ModelSpec):
    """Model of ``CoherenceDirectory`` load / store / rmw / evict."""

    name = "coherence"
    description = "MSI directory: SWMR, directory agreement, no stale reads"

    def __init__(self, hosts: int = 2, lines: int = 2, ops_per_host: int = 3) -> None:
        if hosts < 1 or lines < 1 or ops_per_host < 1:
            raise ModelCheckError(
                f"coherence scope must be positive, got {hosts=} {lines=} {ops_per_host=}"
            )
        self.hosts = hosts
        self.lines = lines
        self.ops_per_host = ops_per_host

    @classmethod
    def at_scope(cls, scope: str) -> "CoherenceSpec":
        if scope == "smoke":
            return cls(hosts=2, lines=2, ops_per_host=3)
        if scope == "deep":
            return cls(hosts=3, lines=2, ops_per_host=4)
        raise ModelCheckError(f"unknown scope {scope!r} (known: smoke, deep)")

    # -- the state machine ---------------------------------------------------

    def initial_states(self) -> _t.Sequence[State]:
        return [
            CoherenceState(
                owners=(None,) * self.lines,
                sharers=((),) * self.lines,
                values=(0,) * self.lines,
                caches=((None,) * self.lines,) * self.hosts,
                budget=(self.ops_per_host,) * self.hosts,
            )
        ]

    def enabled(self, state: State) -> _t.Sequence[Action]:
        s = _t.cast(CoherenceState, state)
        actions: list[Action] = []
        for host in range(self.hosts):
            for line in range(self.lines):
                if s.budget[host] > 0:
                    actions.append(Action("load", (host, line)))
                    actions.append(Action("store", (host, line)))
                    actions.append(Action("rmw", (host, line)))
                if s.caches[host][line] is not None:
                    actions.append(Action("evict", (host, line)))
        return actions

    def apply(self, state: State, action: Action) -> State:
        s = _t.cast(CoherenceState, state)
        host, line = int(action.payload[0]), int(action.payload[1])
        if action.kind == "load":
            return self._apply_load(s, host, line)
        if action.kind == "store":
            return self._apply_store(s, host, line)
        if action.kind == "rmw":
            return self._apply_rmw(s, host, line)
        if action.kind == "evict":
            return self._apply_evict(s, host, line)
        raise ModelCheckError(f"coherence: unknown action {action.render()}")

    # Mutants override the keyword defaults below to seed known-bad
    # protocol edits; the base spec mirrors the implementation exactly.

    def _apply_load(
        self, s: CoherenceState, host: int, line: int, downgrade_owner: bool = True
    ) -> CoherenceState:
        budget = _dec(s.budget, host)
        owner = s.owners[line]
        if s.caches[host][line] is not None and owner in (None, host):
            return dataclasses.replace(s, budget=budget)  # cache hit
        owners, sharers, caches = list(s.owners), list(s.sharers), _rows(s.caches)
        if owner is not None and owner != host and downgrade_owner:
            # downgrade M -> invalid with writeback, exactly like the impl
            caches[owner][line] = None
            sharers[line] = _without(sharers[line], owner)
            owners[line] = None
        sharers[line] = _with(sharers[line], host)
        caches[host][line] = s.values[line]
        return CoherenceState(
            owners=tuple(owners),
            sharers=tuple(sharers),
            values=s.values,
            caches=_freeze(caches),
            budget=budget,
        )

    def _apply_store(
        self, s: CoherenceState, host: int, line: int, invalidate: bool = True
    ) -> CoherenceState:
        budget = _dec(s.budget, host)
        new_value = (s.values[line] + 1) % VALUE_MOD
        values = _set(s.values, line, new_value)
        caches = _rows(s.caches)
        if s.owners[line] == host:  # M hit: write locally
            caches[host][line] = new_value
            return dataclasses.replace(s, values=values, caches=_freeze(caches), budget=budget)
        if invalidate:
            victims = set(s.sharers[line])
            if s.owners[line] is not None:
                victims.add(_t.cast(int, s.owners[line]))
            for victim in sorted(victims - {host}):
                caches[victim][line] = None
        caches[host][line] = new_value
        return CoherenceState(
            owners=_set(s.owners, line, host),
            sharers=_set(s.sharers, line, (host,)),
            values=values,
            caches=_freeze(caches),
            budget=budget,
        )

    def _apply_rmw(
        self, s: CoherenceState, host: int, line: int, invalidate: bool = True
    ) -> CoherenceState:
        budget = _dec(s.budget, host)
        caches = _rows(s.caches)
        if invalidate:  # atomics execute at the home: every copy dies
            for h in range(self.hosts):
                caches[h][line] = None
        return CoherenceState(
            owners=_set(s.owners, line, None),
            sharers=_set(s.sharers, line, ()),
            values=_set(s.values, line, (s.values[line] + 1) % VALUE_MOD),
            caches=_freeze(caches),
            budget=budget,
        )

    def _apply_evict(
        self, s: CoherenceState, host: int, line: int, update_directory: bool = True
    ) -> CoherenceState:
        caches = _rows(s.caches)
        caches[host][line] = None
        owners, sharers = list(s.owners), list(s.sharers)
        if update_directory:
            sharers[line] = _without(sharers[line], host)
            if owners[line] == host:
                owners[line] = None
        return CoherenceState(
            owners=tuple(owners),
            sharers=tuple(sharers),
            values=s.values,
            caches=_freeze(caches),
            budget=s.budget,
        )

    # -- properties ----------------------------------------------------------

    def invariants(self) -> _t.Sequence[Invariant]:
        return (
            Invariant("swmr", self._check_swmr),
            Invariant("directory-agreement", self._check_agreement),
            Invariant("no-stale-read", self._check_stale),
        )

    def _check_swmr(self, state: State) -> str | None:
        s = _t.cast(CoherenceState, state)
        for line in range(self.lines):
            owner = s.owners[line]
            if owner is None:
                continue
            holders = [h for h in range(self.hosts) if s.caches[h][line] is not None]
            if holders != [owner]:
                return (
                    f"line {line}: M owner {owner} coexists with cached "
                    f"copies at hosts {holders}"
                )
        return None

    def _check_agreement(self, state: State) -> str | None:
        s = _t.cast(CoherenceState, state)
        for line in range(self.lines):
            for host in range(self.hosts):
                cached = s.caches[host][line] is not None
                tracked = host in s.sharers[line] or s.owners[line] == host
                if cached != tracked:
                    how = "cached but untracked" if cached else "tracked but not cached"
                    return f"line {line}, host {host}: {how} by the directory"
        return None

    def _check_stale(self, state: State) -> str | None:
        s = _t.cast(CoherenceState, state)
        for line in range(self.lines):
            for host in range(self.hosts):
                held = s.caches[host][line]
                if held is not None and held != s.values[line]:
                    return (
                        f"line {line}: host {host} caches stale value {held}, "
                        f"authoritative value is {s.values[line]} — a local "
                        "hit would return stale data"
                    )
        return None

    def independent(self, a: Action, b: Action) -> bool:
        # ops of different hosts on different lines touch disjoint state
        # (line entry + that host's cache row and budget) and commute
        return a.payload[0] != b.payload[0] and a.payload[1] != b.payload[1]

    def describe_state(self, state: State) -> str:
        s = _t.cast(CoherenceState, state)
        parts = []
        for line in range(self.lines):
            held = "/".join(
                f"h{h}={'-' if s.caches[h][line] is None else s.caches[h][line]}"
                for h in range(self.hosts)
            )
            parts.append(
                f"line{line}[owner={s.owners[line]} sharers={s.sharers[line]} "
                f"value={s.values[line]} {held}]"
            )
        parts.append(f"budget={s.budget}")
        return " ".join(parts)

    # -- replay through the real directory ------------------------------------

    def replay(self, trace: _t.Sequence[Action]) -> ReplayResult:
        from repro.core.coherence.protocol import CoherenceDirectory
        from repro.topology.builder import build_logical

        deployment = build_logical("link0", server_count=self.hosts)
        engine = deployment.engine
        directory = CoherenceDirectory(
            deployment,
            region_bytes=self.lines * CoherenceDirectory.LINE_BYTES,
            snoop_filter_lines=64,  # large: no capacity evictions interfere
        )
        recorder = ReplayRecorder(self.name)
        state = _t.cast(CoherenceState, self.initial_states()[0])
        for action in trace:
            if action not in self.enabled(state):
                raise ModelCheckError(
                    f"coherence replay: {action.render()} is not enabled in "
                    f"the model at {self.describe_state(state)}"
                )
            succ = _t.cast(CoherenceState, self.apply(state, action))
            host, line = int(action.payload[0]), int(action.payload[1])
            if action.kind == "load":
                value = engine.run(directory.load(host, line))
                recorder.expect(
                    value == state.values[line],
                    f"load returned {value}, model expected {state.values[line]}",
                )
            elif action.kind == "store":
                engine.run(directory.store(host, line, succ.values[line]))
            elif action.kind == "rmw":
                old, new = engine.run(
                    directory.atomic_rmw(host, line, lambda v: (v + 1) % VALUE_MOD)
                )
                recorder.expect(
                    (old, new) == (state.values[line], succ.values[line]),
                    f"rmw returned {(old, new)}, model expected "
                    f"{(state.values[line], succ.values[line])}",
                )
            else:  # evict
                engine.run(directory.evict(host, line))
            self._cross_check(directory, succ, recorder)
            recorder.commit(action)
            if recorder.steps[-1].ok is False:
                break  # first divergence is the verdict; stop early
            state = succ
        return recorder.result()

    def _cross_check(
        self, directory: _t.Any, s: CoherenceState, recorder: ReplayRecorder
    ) -> None:
        for line in range(self.lines):
            expected = (s.owners[line], s.sharers[line])
            concrete = directory.entry_view(line)
            recorder.expect(
                concrete == expected,
                f"line {line}: directory is {concrete}, model says {expected}",
            )
            recorder.expect(
                directory.peek(line) == s.values[line],
                f"line {line}: value is {directory.peek(line)}, "
                f"model says {s.values[line]}",
            )
            for host in range(self.hosts):
                cached = line in directory.cached_lines(host)
                recorder.expect(
                    cached == (s.caches[host][line] is not None),
                    f"line {line}: host {host} cached={cached}, model says "
                    f"{s.caches[host][line] is not None}",
                )


# -- small tuple-surgery helpers (canonical states stay tuples) ---------------


def _dec(budget: tuple[int, ...], host: int) -> tuple[int, ...]:
    return budget[:host] + (budget[host] - 1,) + budget[host + 1 :]


_T = _t.TypeVar("_T")


def _set(row: tuple[_T, ...], index: int, value: _T) -> tuple[_T, ...]:
    return row[:index] + (value,) + row[index + 1 :]


def _with(sharers: tuple[int, ...], host: int) -> tuple[int, ...]:
    return tuple(sorted(set(sharers) | {host}))


def _without(sharers: tuple[int, ...], host: int) -> tuple[int, ...]:
    return tuple(h for h in sharers if h != host)


def _rows(
    caches: tuple[tuple[int | None, ...], ...]
) -> list[list[int | None]]:
    return [list(row) for row in caches]


def _freeze(rows: list[list[int | None]]) -> tuple[tuple[int | None, ...], ...]:
    return tuple(tuple(row) for row in rows)
