"""Mutation harness: known-bad protocol edits the checker must catch.

A model checker that has never caught a bug is indistinguishable from
one that checks nothing.  Each mutant below re-derives one spec with a
single protocol edit — the kind of off-by-one a refactor of the real
subsystem could introduce (a store that forgets to invalidate sharers,
a release that forgets to wake the queue, a repair that copies from the
stale mirror) — and the harness demands the explorer kill it with a
counterexample.

The mutants override the ``_apply_*`` keyword seams of the **spec**,
never the implementation: replaying a mutant's counterexample therefore
drives the *correct* production code, which refuses to follow the
modeled bug and diverges.  That divergence is itself evidence the
replay adapters compare real state (a rubber-stamp adapter would follow
any trace), so the harness reports it alongside the kill.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.check.model.admission import AdmissionSpec
from repro.check.model.coherence import CoherenceSpec
from repro.check.model.explorer import Explorer
from repro.check.model.leases import LeaseModelState, LeaseSpec
from repro.check.model.recovery import RecoveryModelState, RecoverySpec
from repro.check.model.replay import checked_replay
from repro.check.model.spec import ModelSpec


# -- coherence mutants --------------------------------------------------------


class StoreSkipsInvalidation(CoherenceSpec):
    def _apply_store(self, s, host, line, invalidate=True):  # type: ignore[no-untyped-def]
        return super()._apply_store(s, host, line, invalidate=False)


class LoadKeepsModifiedOwner(CoherenceSpec):
    def _apply_load(self, s, host, line, downgrade_owner=True):  # type: ignore[no-untyped-def]
        return super()._apply_load(s, host, line, downgrade_owner=False)


class RmwSkipsInvalidation(CoherenceSpec):
    def _apply_rmw(self, s, host, line, invalidate=True):  # type: ignore[no-untyped-def]
        return super()._apply_rmw(s, host, line, invalidate=False)


class EvictLeavesDirectory(CoherenceSpec):
    def _apply_evict(self, s, host, line, update_directory=True):  # type: ignore[no-untyped-def]
        return super()._apply_evict(s, host, line, update_directory=False)


# -- lease mutants ------------------------------------------------------------


class GrantReusesId(LeaseSpec):
    def _apply_grant(
        self, s: LeaseModelState, tenant: int, advance_id: bool = True
    ) -> LeaseModelState:
        return super()._apply_grant(s, tenant, advance_id=False)


class CrashSkipsRefund(LeaseSpec):
    def _apply_crash(
        self, s: LeaseModelState, tenant: int, refund: bool = True
    ) -> LeaseModelState:
        return super()._apply_crash(s, tenant, refund=False)


class SweepIgnoresExpiry(LeaseSpec):
    def _apply_sweep(
        self, s: LeaseModelState, reclaim_expired: bool = True
    ) -> LeaseModelState:
        return super()._apply_sweep(s, reclaim_expired=False)


# -- admission mutants --------------------------------------------------------


class AdmissionIgnoresQuota(AdmissionSpec):
    enforce_quota = False


class ReleaseSkipsServiceQueue(AdmissionSpec):
    service_queue_on_release = False


# -- recovery mutants ---------------------------------------------------------


class WriteFirstMirrorOnly(RecoverySpec):
    def _apply_write(
        self, s: RecoveryModelState, all_live_mirrors: bool = True
    ) -> RecoveryModelState:
        return super()._apply_write(s, all_live_mirrors=False)


class RepairFromStaleMirror(RecoverySpec):
    def _apply_repair(
        self, s: RecoveryModelState, copy_from_live: bool = True
    ) -> RecoveryModelState:
        return super()._apply_repair(s, copy_from_live=False)


@dataclasses.dataclass(frozen=True)
class Mutant:
    """One seeded protocol bug and how to build its spec."""

    name: str
    target: str  # which spec it mutates
    description: str
    build: _t.Callable[[str], ModelSpec]


MUTANTS: tuple[Mutant, ...] = (
    Mutant(
        "store-skips-invalidation",
        "coherence",
        "a store that leaves other sharers' copies intact (breaks SWMR)",
        StoreSkipsInvalidation.at_scope,
    ),
    Mutant(
        "load-keeps-modified-owner",
        "coherence",
        "a load miss that never downgrades the Modified owner",
        LoadKeepsModifiedOwner.at_scope,
    ),
    Mutant(
        "rmw-skips-invalidation",
        "coherence",
        "an atomic that updates home memory without invalidating caches",
        RmwSkipsInvalidation.at_scope,
    ),
    Mutant(
        "evict-leaves-directory",
        "coherence",
        "an eviction the directory never hears about",
        EvictLeavesDirectory.at_scope,
    ),
    Mutant(
        "grant-reuses-id",
        "leases",
        "a grant that forgets to advance the lease-id counter",
        GrantReusesId.at_scope,
    ),
    Mutant(
        "crash-skips-refund",
        "leases",
        "a revocation that reclaims leases without refunding quota",
        CrashSkipsRefund.at_scope,
    ),
    Mutant(
        "sweep-ignores-expiry",
        "leases",
        "a sweeper that never reclaims expired leases (liveness)",
        SweepIgnoresExpiry.at_scope,
    ),
    Mutant(
        "admission-ignores-quota",
        "admission",
        "an admission policy that forgets the quota check",
        AdmissionIgnoresQuota.at_scope,
    ),
    Mutant(
        "release-skips-service-queue",
        "admission",
        "a release that forgets to wake the admission queue (lost wakeup)",
        ReleaseSkipsServiceQueue.at_scope,
    ),
    Mutant(
        "write-first-mirror-only",
        "recovery",
        "a replicated write that updates only the first live mirror",
        WriteFirstMirrorOnly.at_scope,
    ),
    Mutant(
        "repair-from-stale-mirror",
        "recovery",
        "a repair that restores the dead mirror's stale contents",
        RepairFromStaleMirror.at_scope,
    ),
)


@dataclasses.dataclass
class MutantReport:
    """Outcome of hunting one seeded bug."""

    name: str
    target: str
    description: str
    caught: bool
    violation_kind: str = ""
    violation_property: str = ""
    trace_len: int = 0
    states: int = 0
    #: the correct implementation refused to follow the mutant's trace
    replay_diverged: bool | None = None
    replay_deterministic: bool | None = None

    def render(self) -> str:
        if not self.caught:
            return f"MISSED  {self.name} [{self.target}] — {self.description}"
        replay = ""
        if self.replay_diverged is not None:
            verdict = (
                "implementation diverges" if self.replay_diverged else "REPLAY FOLLOWED"
            )
            det = "deterministic" if self.replay_deterministic else "NONDETERMINISTIC"
            replay = f"; replay: {verdict}, {det}"
        return (
            f"caught  {self.name} [{self.target}] — {self.violation_kind} "
            f"{self.violation_property}, {self.trace_len}-action counterexample "
            f"over {self.states} state(s){replay}"
        )

    def to_json(self) -> dict[str, _t.Any]:
        return dataclasses.asdict(self)


def run_mutants(
    scope: str = "smoke", replay: bool = True, max_states: int = 200_000
) -> list[MutantReport]:
    """Explore every seeded mutant; each must die with a counterexample.

    With *replay* (the default) each counterexample is also driven
    through the real DES twice — the correct implementation must
    diverge from the modeled bug, deterministically.
    """
    reports: list[MutantReport] = []
    for mutant in MUTANTS:
        spec = mutant.build(scope)
        result = Explorer(spec, max_states=max_states).run()
        if result.ok:
            reports.append(
                MutantReport(
                    name=mutant.name,
                    target=mutant.target,
                    description=mutant.description,
                    caught=False,
                    states=result.states,
                )
            )
            continue
        violation = result.violations[0]
        report = MutantReport(
            name=mutant.name,
            target=mutant.target,
            description=mutant.description,
            caught=True,
            violation_kind=violation.kind,
            violation_property=violation.property,
            trace_len=len(violation.trace),
            states=result.states,
        )
        if replay and violation.trace:
            # a liveness lasso's bug lives in its cycle, so replay that too
            replayed = checked_replay(spec, violation.trace + violation.cycle)
            report.replay_diverged = replayed.diverged
            report.replay_deterministic = replayed.deterministic
        reports.append(report)
    return reports
