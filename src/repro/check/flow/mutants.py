"""Mutation harness: known-bad code the flow rules must catch.

A dataflow pass that has never caught a bug is indistinguishable from
one that checks nothing.  Each mutant below is a small module carrying
exactly one seeded defect — the kind of edit a refactor of the real
subsystem could introduce (a cleanup path that frees twice, an
``except`` arm that swallows the release, a cost charged in bytes) —
plus the *repaired* twin of the same code.  The harness demands that
the owning rule kill the defective version **at the seeded line** and
stay silent on the repaired one; a rule that fires on both is noise,
and a rule that fires on neither is dead weight.

Run via ``repro check --flow --mutants`` (exit 5 if any survive).
"""

from __future__ import annotations

import dataclasses
import textwrap
import typing as _t

from repro.check.flow.analyze import analyze_source

#: every mutant analyzes under this synthetic path (subsystem: core)
_MUTANT_PATH = "repro/core/__mutant__.py"


@dataclasses.dataclass(frozen=True)
class FlowMutant:
    """One seeded defect, its repaired twin, and where the kill must land."""

    name: str
    rule: str  # the LMP01x id that must catch it
    description: str
    bad: str  # module source with exactly one defect
    good: str  # the repaired twin; must analyze clean for `rule`
    defect_line: int  # 1-based line in `bad` the finding must anchor to


def _src(text: str) -> str:
    return textwrap.dedent(text).strip("\n") + "\n"


MUTANTS: tuple[FlowMutant, ...] = (
    # -- LMP011: handle lifecycle ---------------------------------------------
    FlowMutant(
        name="double-free-on-cleanup-path",
        rule="LMP011",
        description="error-handling arm frees a handle the happy path already freed",
        bad=_src(
            """
            def drain(alloc, h):
                try:
                    alloc.free(h)
                    audit()
                except ValueError:
                    alloc.free(h)
            """
        ),
        good=_src(
            """
            def drain(alloc, h):
                try:
                    audit()
                finally:
                    alloc.free(h)
            """
        ),
        defect_line=6,
    ),
    FlowMutant(
        name="use-after-compaction",
        rule="LMP011",
        description="handle resolved after compact() relocated every live block",
        bad=_src(
            """
            def repack(alloc, compactor, n):
                h = alloc.allocate(n)
                compactor.compact(alloc)
                return alloc.resolve(h)
            """
        ),
        good=_src(
            """
            def repack(alloc, compactor, n):
                h = alloc.allocate(n)
                report = compactor.compact(alloc)
                h = report.moved_to(h)
                return alloc.resolve(h)
            """
        ),
        defect_line=4,
    ),
    FlowMutant(
        name="free-through-stale-handle",
        rule="LMP011",
        description="relocated handle freed under its pre-move identity",
        bad=_src(
            """
            def shuffle(alloc, h):
                alloc.relocate(h)
                alloc.free(h)
            """
        ),
        good=_src(
            """
            def shuffle(alloc, h):
                h = alloc.relocate(h)
                alloc.free(h)
            """
        ),
        defect_line=3,
    ),
    FlowMutant(
        name="double-free-in-loop",
        rule="LMP011",
        description="loop body frees a handle hoisted out of the loop",
        bad=_src(
            """
            def retry_free(alloc, h, attempts):
                for _ in attempts:
                    alloc.free(h)
            """
        ),
        good=_src(
            """
            def retry_free(alloc, h, attempts):
                alloc.free(h)
            """
        ),
        defect_line=3,
    ),
    # -- LMP012: leak on path -------------------------------------------------
    FlowMutant(
        name="leak-through-swallowed-exception",
        rule="LMP012",
        description="except arm swallows the failure and skips the release",
        bad=_src(
            """
            def serve(table, tenant):
                lease = table.grant(tenant)
                try:
                    handle(lease)
                    table.release(lease)
                except ValueError:
                    log_and_continue()
            """
        ),
        good=_src(
            """
            def serve(table, tenant):
                lease = table.grant(tenant)
                try:
                    handle(lease)
                finally:
                    table.release(lease)
            """
        ),
        defect_line=2,
    ),
    FlowMutant(
        name="leak-on-early-return",
        rule="LMP012",
        description="validation early-return skips the free the tail performs",
        bad=_src(
            """
            def stage(alloc, req):
                block = alloc.allocate(req)
                if not valid(req):
                    return None
                fill(block, req)
                alloc.free(block)
                return True
            """
        ),
        good=_src(
            """
            def stage(alloc, req):
                block = alloc.allocate(req)
                try:
                    if not valid(req):
                        return None
                    fill(block, req)
                    return True
                finally:
                    alloc.free(block)
            """
        ),
        defect_line=2,
    ),
    FlowMutant(
        name="semaphore-held-through-except",
        rule="LMP012",
        description="DES semaphore released on the happy path only",
        bad=_src(
            """
            def worker(engine, sem):
                yield sem.acquire()
                try:
                    yield engine.timeout(10)
                    sem.release()
                except ValueError:
                    record_failure()
            """
        ),
        good=_src(
            """
            def worker(engine, sem):
                yield sem.acquire()
                try:
                    yield engine.timeout(10)
                finally:
                    sem.release()
            """
        ),
        defect_line=2,
    ),
    # -- LMP013: unit confusion -----------------------------------------------
    FlowMutant(
        name="deadline-plus-payload",
        rule="LMP013",
        description="nanosecond deadline added to a byte count",
        bad=_src(
            """
            from repro import units

            def budget(size_bytes):
                deadline_ns = units.ms(5)
                return deadline_ns + size_bytes
            """
        ),
        good=_src(
            """
            from repro import units

            def budget(size_bytes, link_bytes_per_ns):
                deadline_ns = units.ms(5)
                return deadline_ns + size_bytes / link_bytes_per_ns
            """
        ),
        defect_line=5,
    ),
    FlowMutant(
        name="bytes-charged-as-time",
        rule="LMP013",
        description="a byte count flows into a *_ns keyword argument",
        bad=_src(
            """
            from repro import units

            def charge(engine, moved):
                moved_bytes = units.mib(moved)
                engine.charge(cost_ns=moved_bytes)
            """
        ),
        good=_src(
            """
            from repro import units

            def charge(engine, moved, bw_bytes_per_ns):
                moved_bytes = units.mib(moved)
                engine.charge(cost_ns=moved_bytes / bw_bytes_per_ns)
            """
        ),
        defect_line=5,
    ),
    FlowMutant(
        name="size-formatted-as-time",
        rule="LMP013",
        description="a size lands in fmt_time through two assignments",
        bad=_src(
            """
            from repro import units

            def describe(n):
                footprint = units.gib(n)
                shown = footprint
                return units.fmt_time(shown)
            """
        ),
        good=_src(
            """
            from repro import units

            def describe(n):
                footprint = units.gib(n)
                shown = footprint
                return units.fmt_size(shown)
            """
        ),
        defect_line=6,
    ),
    # -- LMP014: yield discipline ---------------------------------------------
    FlowMutant(
        name="dropped-timeout-event",
        rule="LMP014",
        description="engine.timeout() as a bare statement: the wait evaporates",
        bad=_src(
            """
            def backoff(engine, delay):
                engine.timeout(delay)
                yield engine.timeout(1)
            """
        ),
        good=_src(
            """
            def backoff(engine, delay):
                yield engine.timeout(delay)
                yield engine.timeout(1)
            """
        ),
        defect_line=2,
    ),
    FlowMutant(
        name="generator-called-not-delegated",
        rule="LMP014",
        description="sim-time generator invoked like a function and discarded",
        bad=_src(
            """
            def phase(engine, sem):
                yield sem.acquire()
                sem.release()

            def run(engine, sem):
                phase(engine, sem)
            """
        ),
        good=_src(
            """
            def phase(engine, sem):
                yield sem.acquire()
                sem.release()

            def run(engine, sem):
                engine.process(phase(engine, sem))
            """
        ),
        defect_line=6,
    ),
    FlowMutant(
        name="yield-of-generator-object",
        rule="LMP014",
        description="yield g() suspends on the generator object, not its waits",
        bad=_src(
            """
            def step(engine):
                yield engine.timeout(2)

            def epoch(engine):
                yield step(engine)
            """
        ),
        good=_src(
            """
            def step(engine):
                yield engine.timeout(2)

            def epoch(engine):
                yield from step(engine)
            """
        ),
        defect_line=5,
    ),
    FlowMutant(
        name="hybrid-transfer-callback-dropped",
        rule="LMP014",
        description=(
            "bare fluid.transfer() without on_complete drops the wait; the "
            "hybrid callback form consumes it"
        ),
        bad=_src(
            """
            def issue(fluid, path, size, finish):
                fluid.transfer(path, size)
                fluid.transfer(path, size, on_complete=finish)
            """
        ),
        good=_src(
            """
            def issue(fluid, path, size, finish):
                fluid.transfer(path, size, on_complete=finish)
                fluid.transfer(path, size, on_complete=finish)
            """
        ),
        defect_line=2,
    ),
    # -- LMP015: dead cost stores ---------------------------------------------
    FlowMutant(
        name="cost-computed-never-charged",
        rule="LMP015",
        description="migration cost modeled, then the function returns without it",
        bad=_src(
            """
            def migrate(engine, moved_bytes, bw):
                cost_ns = moved_bytes / bw
                return True
            """
        ),
        good=_src(
            """
            def migrate(engine, moved_bytes, bw):
                cost_ns = moved_bytes / bw
                yield engine.timeout(cost_ns)
                return True
            """
        ),
        defect_line=2,
    ),
    FlowMutant(
        name="cost-overwritten-before-charge",
        rule="LMP015",
        description="accumulated cost clobbered by a constant before the charge",
        bad=_src(
            """
            def settle(engine, rows):
                total_cost = tally(rows)
                total_cost = 0
                yield engine.timeout(total_cost)
            """
        ),
        good=_src(
            """
            def settle(engine, rows):
                total_cost = tally(rows)
                yield engine.timeout(total_cost)
            """
        ),
        defect_line=2,
    ),
)


@dataclasses.dataclass
class FlowMutantReport:
    """Outcome of hunting one seeded defect."""

    name: str
    rule: str
    description: str
    caught: bool
    #: file:line where the rule anchored its finding (evidence of the kill)
    evidence: str = ""
    #: the repaired twin analyzed clean for this rule
    clean_ok: bool = True
    message: str = ""

    def render(self) -> str:
        if not self.caught:
            return f"MISSED  {self.name} [{self.rule}] — {self.description}"
        twin = "" if self.clean_ok else "; REPAIRED TWIN STILL FLAGGED"
        return f"caught  {self.name} [{self.rule}] at {self.evidence}{twin}"

    def to_json(self) -> dict[str, _t.Any]:
        return dataclasses.asdict(self)


def run_flow_mutants() -> list[FlowMutantReport]:
    """Analyze every mutant; each must die at its seeded line.

    A mutant counts as caught only when its owning rule reports a
    finding **on the defect line** — rule-fired-somewhere is not
    evidence.  The repaired twin must be clean for that rule, or the
    kill is attributed to noise and reported as such.
    """
    reports: list[FlowMutantReport] = []
    for mutant in MUTANTS:
        bad_report = analyze_source(mutant.bad, _MUTANT_PATH)
        hits = [
            v
            for v in bad_report.violations
            if v.rule_id == mutant.rule and v.line == mutant.defect_line
        ]
        good_report = analyze_source(mutant.good, _MUTANT_PATH)
        clean_ok = not any(v.rule_id == mutant.rule for v in good_report.violations)
        if hits:
            hit = hits[0]
            reports.append(
                FlowMutantReport(
                    name=mutant.name,
                    rule=mutant.rule,
                    description=mutant.description,
                    caught=clean_ok,  # a rule that flags the fix too is noise
                    evidence=f"{_MUTANT_PATH}:{hit.line}",
                    clean_ok=clean_ok,
                    message=hit.message,
                )
            )
        else:
            reports.append(
                FlowMutantReport(
                    name=mutant.name,
                    rule=mutant.rule,
                    description=mutant.description,
                    caught=False,
                    clean_ok=clean_ok,
                )
            )
    return reports
