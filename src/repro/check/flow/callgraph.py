"""A lightweight, name-based call graph over the ``repro`` source tree.

The flow rules are intraprocedural, but two of them need one whole-tree
fact each:

* **LMP014** needs to know which functions are *sim-time-consuming
  generators* — generator functions that ``yield`` an engine wait
  (``timeout``, ``acquire``, ``wait``, a transfer, a migration), either
  directly or by ``yield from``-ing another such generator.  Calling
  one of those from a non-generator frame and discarding the result
  creates a generator that never runs: the wait silently evaporates.
* **LMP013** resolves positional arguments against the callee's
  parameter names, so a nanosecond value flowing into a ``..._bytes``
  parameter is caught across function boundaries.

Resolution is deliberately name-based (the last component of the call's
dotted name): no type inference, no import following.  Ambiguity is
handled by refusing to conclude — a bare name that maps to several
in-tree functions with conflicting facts contributes nothing.  That
keeps the graph cheap (one AST walk per module, shared with the flow
pass) and the rules it feeds low-noise.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import typing as _t

#: method names that produce a sim-time event when called on an engine,
#: resource, transport, or pool (the DES wait surface)
WAIT_ATTRS = frozenset(
    {
        "timeout",
        "acquire",
        "wait",
        "transfer",
        "migrate_extent",
        "relocate_extent_locally",
        "get",  # Store.get: a blocking channel read
    }
)


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _walk_shallow(func: ast.AST) -> _t.Iterator[ast.AST]:
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclasses.dataclass
class FunctionInfo:
    """What the call graph knows about one function definition."""

    qualname: str  # module:Class.method or module:function
    name: str  # the bare name calls are matched on
    path: pathlib.Path
    lineno: int
    params: tuple[str, ...]
    is_generator: bool
    #: the function directly yields a WAIT_ATTRS call
    yields_wait: bool
    #: bare names of functions invoked via ``yield from name(...)``
    delegates: tuple[str, ...]
    #: bare names of every function called
    calls: tuple[str, ...]


class CallGraph:
    """Name-indexed registry of every function in the analyzed tree."""

    def __init__(self) -> None:
        self.functions: list[FunctionInfo] = []
        self._by_name: dict[str, list[FunctionInfo]] = {}
        self._time_consuming: frozenset[str] | None = None

    def add_module(self, tree: ast.AST, path: pathlib.Path, module: str) -> None:
        for info in _collect(tree, path, module):
            self.functions.append(info)
            self._by_name.setdefault(info.name, []).append(info)
            self._time_consuming = None  # registry changed; recompute lazily

    def lookup(self, bare_name: str) -> list[FunctionInfo]:
        return self._by_name.get(bare_name, [])

    def unique_params(self, bare_name: str) -> tuple[str, ...] | None:
        """Parameter names when every in-tree candidate agrees, else None."""
        candidates = self.lookup(bare_name)
        if not candidates:
            return None
        params = {info.params for info in candidates}
        if len(params) == 1:
            return candidates[0].params
        return None

    def time_consuming_generators(self) -> frozenset[str]:
        """Bare names whose every in-tree definition is a generator that
        (transitively) yields an engine wait.

        Requiring *every* candidate to agree keeps name collisions from
        turning an innocent helper into a flagged one.
        """
        if self._time_consuming is not None:
            return self._time_consuming
        waiting: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, infos in self._by_name.items():
                if name in waiting:
                    continue
                if all(
                    info.is_generator
                    and (
                        info.yields_wait
                        or any(d in waiting for d in info.delegates)
                    )
                    for info in infos
                ):
                    waiting.add(name)
                    changed = True
        self._time_consuming = frozenset(waiting)
        return self._time_consuming


def _collect(
    tree: ast.AST, path: pathlib.Path, module: str
) -> _t.Iterator[FunctionInfo]:
    class_stack: list[str] = []

    def visit(node: ast.AST) -> _t.Iterator[FunctionInfo]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                class_stack.append(child.name)
                yield from visit(child)
                class_stack.pop()
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield _describe(child, path, module, tuple(class_stack))
                yield from visit(child)  # nested defs too

    yield from visit(tree)


def _describe(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    path: pathlib.Path,
    module: str,
    classes: tuple[str, ...],
) -> FunctionInfo:
    scope = ".".join((*classes, func.name))
    params = tuple(
        arg.arg
        for arg in (
            *func.args.posonlyargs,
            *func.args.args,
            *func.args.kwonlyargs,
        )
    )
    is_generator = False
    yields_wait = False
    delegates: list[str] = []
    calls: list[str] = []
    for node in _walk_shallow(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            is_generator = True
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in WAIT_ATTRS
            ):
                yields_wait = True
            if isinstance(node, ast.YieldFrom) and isinstance(value, ast.Call):
                callee = _bare_callee(value)
                if callee is not None:
                    delegates.append(callee)
        elif isinstance(node, ast.Call):
            callee = _bare_callee(node)
            if callee is not None:
                calls.append(callee)
    return FunctionInfo(
        qualname=f"{module}:{scope}",
        name=func.name,
        path=path,
        lineno=func.lineno,
        params=params,
        is_generator=is_generator,
        yields_wait=yields_wait,
        delegates=tuple(delegates),
        calls=tuple(calls),
    )


def _bare_callee(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None
