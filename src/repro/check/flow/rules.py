"""The flow-sensitive lint rules (LMP011–LMP015).

The single-pass rules in :mod:`repro.check.rules` see one statement at
a time; these rules run the :mod:`repro.check.flow.solver` over each
function's CFG, so they see *orderings*: a handle used after the
statement that freed it, a lease released on the happy path but leaked
through an ``except`` arm, a nanosecond value flowing through three
assignments into a bytes-typed parameter.  Each rule predicts, at lint
time, a failure the runtime layers only catch when a trace happens to
hit it:

* **LMP011** predicts the :class:`~repro.errors.DoubleFreeError` /
  :class:`~repro.errors.StaleHandleError` paths the allocator arena
  raises at runtime;
* **LMP012** predicts the leaks the :class:`AllocSanitizer` and the
  lease sweeper report long after the leaking frame returned;
* **LMP013** predicts silent unit corruption (ns vs bytes) that no
  runtime layer can see at all — both are plain numbers by then;
* **LMP014** predicts waits that silently evaporate because a
  generator was called like a function;
* **LMP015** predicts cost models that compute a charge and never
  apply it to the DES clock.

Every rule reports through the same :class:`~repro.check.rules.Violation`
shape the classic linter uses, so ``# noqa: LMP01x`` suppression, the
``--select`` filter, and all three output formats work unchanged.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import typing as _t

from repro.check.flow.callgraph import CallGraph, dotted_name
from repro.check.flow.cfg import CFG, Node, build_cfg, iter_functions, probe_exprs
from repro.check.flow.solver import BACKWARD, Domain, solve
from repro.check.rules import Violation

__all__ = ["FLOW_RULES", "FlowContext", "FlowRule", "analyze_module_tree"]


@dataclasses.dataclass(frozen=True)
class FlowContext:
    """Everything a flow rule may consult beyond the function itself."""

    path: pathlib.Path
    subsystem: str | None
    callgraph: CallGraph

    @classmethod
    def for_path(cls, path: pathlib.Path, callgraph: CallGraph) -> "FlowContext":
        parts = path.parts
        subsystem: str | None = None
        for i, part in enumerate(parts):
            if part == "repro" and i + 2 < len(parts):
                subsystem = parts[i + 1]
                break
        return cls(path=path, subsystem=subsystem, callgraph=callgraph)


class FlowRule:
    """Base class: subclasses define ``id``, ``title``, ``check_function``."""

    id: _t.ClassVar[str] = "LMP000"
    title: _t.ClassVar[str] = ""
    #: subsystems the rule applies to, or None for every repro module
    subsystems: _t.ClassVar[frozenset[str] | None] = None

    def applies(self, ctx: FlowContext) -> bool:
        return self.subsystems is None or ctx.subsystem in self.subsystems

    def check_function(self, cfg: CFG, ctx: FlowContext) -> list[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FlowContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule_id=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


# ---------------------------------------------------------------------------
# shared syntactic helpers
# ---------------------------------------------------------------------------


def _calls_in(stmt: ast.stmt) -> list[ast.Call]:
    """Calls evaluated *by this statement's node*, in source order.

    Compound statements contribute only their header expressions
    (:func:`probe_exprs`); their bodies are separate CFG nodes and
    walking them here would misattribute effects to the header.
    """
    out: list[ast.Call] = []
    stack: list[ast.AST] = list(probe_exprs(stmt))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    out.sort(key=lambda c: (c.lineno, c.col_offset))
    return out


def _loop_bound_names(stmt: ast.stmt) -> set[str]:
    """Names (re)bound by a ``for`` target or ``with ... as`` clause."""
    targets: list[ast.expr] = []
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets.append(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets.extend(
            item.optional_vars for item in stmt.items if item.optional_vars is not None
        )
    names: set[str] = set()
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.add(node.id)
    return names


def _attr_call(call: ast.Call) -> tuple[str | None, str | None]:
    """(receiver dotted name, method name) for ``recv.method(...)``."""
    if isinstance(call.func, ast.Attribute):
        return dotted_name(call.func.value), call.func.attr
    return None, None


def _assign_targets(stmt: ast.stmt) -> list[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets)
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        return [stmt.target]
    if isinstance(stmt, ast.AugAssign):
        return [stmt.target]
    return []


def _assign_value(stmt: ast.stmt) -> ast.expr | None:
    if isinstance(stmt, ast.Assign):
        return stmt.value
    if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        return stmt.value
    return None


# ---------------------------------------------------------------------------
# LMP011 — handle use-after-free / use-after-relocate
# ---------------------------------------------------------------------------

#: allocator facts, in increasing severity (join keeps the worst)
_LIVE = "live"
_STALE = "stale"
_FREED = "freed"
_SEVERITY = {_LIVE: 0, _STALE: 1, _FREED: 2}

#: methods that grant a handle
_GRANT_ATTRS = frozenset({"allocate", "allocate_for"})
#: methods whose handle argument is *consumed* (state transition)
_FREE_ATTRS = frozenset({"free"})
_RELOCATE_ATTRS = frozenset({"relocate"})
#: methods whose handle argument is *dereferenced* (a use)
_DEREF_ATTRS = frozenset({"resolve", "read", "write", "load", "store"})
#: a compaction pass relocates every live block of its allocator
_COMPACT_ATTRS = frozenset({"compact"})

_HandleState = tuple[str, int]  # (fact, line it was established on)
_HandleEnv = dict[str, _HandleState]


class _HandleDomain(Domain[_HandleEnv]):
    def boundary(self, cfg: CFG) -> _HandleEnv:
        return {}

    def bottom(self, cfg: CFG) -> _HandleEnv:
        return {}

    def join(self, a: _HandleEnv, b: _HandleEnv) -> _HandleEnv:
        out = dict(a)
        for name, state in b.items():
            prior = out.get(name)
            if prior is None or _SEVERITY[state[0]] > _SEVERITY[prior[0]]:
                out[name] = state
        return out

    def transfer(self, node: Node, value: _HandleEnv) -> _HandleEnv:
        if node.stmt is None:
            return value
        env = dict(value)
        _handle_effects(node.stmt, env, None)
        return env


def _handle_arg(call: ast.Call) -> str | None:
    """The handle variable passed to an allocator op, if it is a plain name."""
    if call.args and isinstance(call.args[0], ast.Name):
        return call.args[0].id
    return None


def _handle_effects(
    stmt: ast.stmt, env: _HandleEnv, out: list[tuple[ast.Call, str, str, int]] | None
) -> None:
    """Apply *stmt*'s allocator effects to *env*; collect findings in *out*.

    Findings are ``(call, verb, handle, established_line)`` with verbs
    ``double-free`` / ``free-stale`` / ``use-freed`` / ``use-stale``.
    """
    for call in _calls_in(stmt):
        _recv, attr = _attr_call(call)
        if attr is None:
            continue
        if attr in _FREE_ATTRS:
            handle = _handle_arg(call)
            if handle is None:
                continue
            state = env.get(handle)
            if state is not None and out is not None:
                if state[0] == _FREED:
                    out.append((call, "double-free", handle, state[1]))
                elif state[0] == _STALE:
                    out.append((call, "free-stale", handle, state[1]))
            env[handle] = (_FREED, call.lineno)
        elif attr in _RELOCATE_ATTRS:
            handle = _handle_arg(call)
            if handle is None:
                continue
            state = env.get(handle)
            if state is not None and out is not None and state[0] != _LIVE:
                verb = "use-freed" if state[0] == _FREED else "use-stale"
                out.append((call, verb, handle, state[1]))
            env[handle] = (_STALE, call.lineno)
        elif attr in _DEREF_ATTRS:
            handle = _handle_arg(call)
            if handle is None:
                continue
            state = env.get(handle)
            if state is not None and out is not None and state[0] != _LIVE:
                verb = "use-freed" if state[0] == _FREED else "use-stale"
                out.append((call, verb, handle, state[1]))
        elif attr in _COMPACT_ATTRS:
            # compaction relocates every live block: all tracked handles
            # must be re-resolved through the CompactionReport move map
            for name, state in list(env.items()):
                if state[0] == _LIVE:
                    env[name] = (_STALE, call.lineno)

    # (re)bindings come last: `h = alloc.allocate(n)` tracks a fresh
    # handle regardless of what `h` held before
    value = _assign_value(stmt)
    if not isinstance(stmt, ast.AugAssign):
        for target in _assign_targets(stmt):
            if isinstance(target, ast.Name):
                env.pop(target.id, None)
        if isinstance(value, ast.Call):
            _recv, attr = _attr_call(value)
            if attr in _GRANT_ATTRS | _RELOCATE_ATTRS:
                for target in _assign_targets(stmt):
                    if isinstance(target, ast.Name):
                        env[target.id] = (_LIVE, stmt.lineno)
    if isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                env.pop(target.id, None)
    for name in _loop_bound_names(stmt):
        env.pop(name, None)
    # escapes: a handle stored into a container or attribute may be
    # freed/reloaded through that alias; stop tracking it
    for target in _assign_targets(stmt):
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            for name_node in ast.walk(_assign_value(stmt) or target):
                if isinstance(name_node, ast.Name) and name_node.id in env:
                    env.pop(name_node.id, None)
    for call in _calls_in(stmt):
        _recv, attr = _attr_call(call)
        if attr in ("append", "add", "put", "insert", "push", "extend", "register"):
            for arg in call.args:
                for name_node in ast.walk(arg):
                    if isinstance(name_node, ast.Name):
                        env.pop(name_node.id, None)


_LMP011_VERBS = {
    "double-free": (
        "handle {h!r} was already freed at line {line}; freeing it again "
        "raises DoubleFreeError at runtime"
    ),
    "free-stale": (
        "handle {h!r} went stale at line {line} (relocated by compaction); "
        "freeing it raises StaleHandleError — re-resolve through the "
        "CompactionReport move map first"
    ),
    "use-freed": (
        "handle {h!r} was freed at line {line} and is used here; this is "
        "the UseAfterFreeError path the sanitizer only catches at runtime"
    ),
    "use-stale": (
        "handle {h!r} went stale at line {line} (relocated by compaction) "
        "and is used here; re-resolve through the CompactionReport move map"
    ),
}


class HandleLifecycleRule(FlowRule):
    """LMP011 — allocator handle used after ``free``/``relocate``.

    Tracks :class:`~repro.mem.arena.AllocatorProtocol` facts
    (``allocate``/``free``/``relocate``/``compact``) through the CFG.
    A handle freed or relocated on *any* path reaching a later
    ``free``/``relocate``/``resolve``/``read``/``write`` of the same
    variable is reported — the static twin of the arena's
    ``DoubleFreeError``/``StaleHandleError``/``UseAfterFreeError``.
    """

    id = "LMP011"
    title = "allocator handle used after free/relocate"

    def check_function(self, cfg: CFG, ctx: FlowContext) -> list[Violation]:
        result = solve(cfg, _HandleDomain())
        findings: list[Violation] = []
        seen: set[tuple[int, int, str]] = set()
        for node in cfg.statements():
            env = dict(result.before(node.id))
            hits: list[tuple[ast.Call, str, str, int]] = []
            _handle_effects(node.stmt or ast.Pass(), env, hits)
            for call, verb, handle, line in hits:
                key = (call.lineno, call.col_offset, verb)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    self.violation(
                        ctx, call, _LMP011_VERBS[verb].format(h=handle, line=line)
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# LMP012 — resource leaked on some path to exit
# ---------------------------------------------------------------------------

_HELD = "held"
_RELEASED = "released"
_MAYBE = "maybe"

#: methods whose *result* is an owned resource bound to a variable
_RES_GRANT_ATTRS = frozenset({"allocate", "allocate_for", "alloc", "grant", "span"})
#: methods that release by handle argument
_RES_RELEASE_BY_ARG = frozenset({"free", "release"})
#: receiver-side release (``sem.release()``)
_RES_RELEASE_ATTRS = frozenset({"release", "close"})

_ResState = tuple[str, int]  # (fact, acquire line)
_ResEnv = dict[str, _ResState]


class _ResourceDomain(Domain[_ResEnv]):
    def boundary(self, cfg: CFG) -> _ResEnv:
        return {}

    def bottom(self, cfg: CFG) -> _ResEnv:
        return {}

    def join(self, a: _ResEnv, b: _ResEnv) -> _ResEnv:
        out = dict(a)
        for key, state in b.items():
            prior = out.get(key)
            if prior is None:
                out[key] = state
            elif prior[0] != state[0]:
                out[key] = (_MAYBE, min(prior[1], state[1]))
        return out

    def transfer(self, node: Node, value: _ResEnv) -> _ResEnv:
        if node.stmt is None:
            return value
        env = dict(value)
        _resource_effects(node.stmt, env)
        return env

    def exception_value(self, node: Node, before: _ResEnv, after: _ResEnv) -> _ResEnv:
        # a grant is atomic with its binding statement's success: if
        # `h = pool.allocate(...)` raises, nothing was granted, so the
        # handler must not see `h` as held
        value = self.join(before, after)
        stmt = node.stmt
        granted = _assign_value(stmt) if stmt is not None else None
        if stmt is not None and isinstance(granted, ast.Call):
            _recv, attr = _attr_call(granted)
            if attr in _RES_GRANT_ATTRS:
                for target in _assign_targets(stmt):
                    if isinstance(target, ast.Name):
                        if target.id in before:
                            value[target.id] = before[target.id]
                        else:
                            value.pop(target.id, None)
        return value


def _resource_effects(stmt: ast.stmt, env: _ResEnv) -> None:
    for call in _calls_in(stmt):
        recv, attr = _attr_call(call)
        if attr is None:
            continue
        if attr == "acquire" and recv is not None:
            # ``yield x.acquire()``: the *receiver* is what must be
            # released; the event variable is just plumbing
            env[recv] = (_HELD, call.lineno)
        elif attr in _RES_RELEASE_ATTRS and not call.args and recv is not None:
            if recv in env:
                env[recv] = (_RELEASED, env[recv][1])
        if attr in _RES_RELEASE_BY_ARG and call.args:
            arg = call.args[0]
            if isinstance(arg, ast.Name) and arg.id in env:
                env[arg.id] = (_RELEASED, env[arg.id][1])
    value = _assign_value(stmt)
    if isinstance(value, ast.Call) and not isinstance(stmt, ast.AugAssign):
        _recv, attr = _attr_call(value)
        if attr in _RES_GRANT_ATTRS:
            for target in _assign_targets(stmt):
                if isinstance(target, ast.Name):
                    env[target.id] = (_HELD, stmt.lineno)
    # ownership escapes: returned, yielded, or stored away — the caller
    # (or the container's owner) is responsible for the release now
    escaped: set[str] = set()
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        for node in ast.walk(stmt.value):
            if isinstance(node, ast.Name):
                escaped.add(node.id)
    for target in _assign_targets(stmt):
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            source = _assign_value(stmt)
            if source is not None:
                for node in ast.walk(source):
                    if isinstance(node, ast.Name):
                        escaped.add(node.id)
    for call in _calls_in(stmt):
        _recv, attr = _attr_call(call)
        if attr in ("append", "add", "put", "insert", "push", "extend", "register"):
            for arg in call.args:
                for node in ast.walk(arg):
                    if isinstance(node, ast.Name):
                        escaped.add(node.id)
    for name in escaped:
        env.pop(name, None)
    for name in _loop_bound_names(stmt):
        env.pop(name, None)


class ResourceLeakRule(FlowRule):
    """LMP012 — resource released on some paths to exit but not all.

    The flow-sensitive upgrade of LMP008: a lease, allocation, lock or
    span acquired in this function and released on at least one path to
    the normal exit, but *held* on another (typically the path through
    an ``except`` arm that swallows the failure), leaks exactly on the
    path tests rarely exercise.  A resource that is never released at
    all is assumed to transfer ownership (returned, stored, freed by
    the caller) and is not reported.
    """

    id = "LMP012"
    title = "resource leaked on some path to exit"

    def check_function(self, cfg: CFG, ctx: FlowContext) -> list[Violation]:
        result = solve(cfg, _ResourceDomain())
        at_exit = result.before(cfg.exit)
        findings: list[Violation] = []
        for key in sorted(at_exit):
            fact, line = at_exit[key]
            if fact != _MAYBE:
                continue
            anchor = ast.Pass()
            anchor.lineno = line
            anchor.col_offset = 0
            findings.append(
                self.violation(
                    ctx,
                    anchor,
                    f"resource {key!r} acquired here is released on some "
                    "paths to exit but not all (an exception arm or early "
                    "return skips the release); move the release to a "
                    "finally/with, or # noqa: LMP012 with the reason the "
                    "unreleased path is impossible",
                )
            )
        return findings


# ---------------------------------------------------------------------------
# LMP013 — unit confusion (ns vs bytes vs bandwidth)
# ---------------------------------------------------------------------------

_TIME = "ns"
_BYTES = "bytes"
_BW = "bytes/ns"

#: repro.units constructors, by bare name
_UNIT_CONSTRUCTORS: dict[str, str] = {
    "ns": _TIME,
    "us": _TIME,
    "ms": _TIME,
    "seconds": _TIME,
    "kib": _BYTES,
    "mib": _BYTES,
    "gib": _BYTES,
    "gb": _BYTES,
    "gbps": _BW,
    "mbps": _BW,
}

#: formatters whose argument must be of a specific unit
_UNIT_SINKS: dict[str, str] = {
    "fmt_time": _TIME,
    "fmt_size": _BYTES,
    "fmt_bandwidth": _BW,
    # feeding an already-typed value to a constructor re-scales it
    "ns": _TIME,
    "us": _TIME,
    "ms": _TIME,
    "seconds": _TIME,
    "kib": _BYTES,
    "mib": _BYTES,
    "gib": _BYTES,
    "gb": _BYTES,
}

_UnitEnv = dict[str, str]


def _unit_from_name(name: str) -> str | None:
    """Infer a unit from ``*_ns`` / ``*_bytes`` naming conventions."""
    lowered = name.lower()
    if (
        "per_ns" in lowered
        or "bytes_per" in lowered
        or lowered.endswith("_gbps")
        or lowered.endswith("_bw")
    ):
        return _BW
    if lowered.endswith("_ns"):
        return _TIME
    if lowered.endswith("_bytes"):
        return _BYTES
    return None


class _UnitDomain(Domain["_UnitEnv | None"]):
    """Unit taint environment.  ``None`` is the unreached value — the
    join is an *intersection* (a binding survives a merge only when
    every incoming path agrees), so the identity element cannot be the
    empty dict."""

    def boundary(self, cfg: CFG) -> _UnitEnv:
        env: _UnitEnv = {}
        args = cfg.func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            unit = _unit_from_name(arg.arg)
            if unit is not None:
                env[arg.arg] = unit
        return env

    def bottom(self, cfg: CFG) -> _UnitEnv | None:
        return None

    def join(self, a: _UnitEnv | None, b: _UnitEnv | None) -> _UnitEnv | None:
        if a is None:
            return b
        if b is None:
            return a
        # agreeing bindings survive; conflicting ones drop to unknown
        return {k: v for k, v in a.items() if b.get(k) == v}

    def transfer(self, node: Node, value: _UnitEnv | None) -> _UnitEnv | None:
        if value is None or node.stmt is None:
            return value
        env = dict(value)
        _unit_effects(node.stmt, env, None, None)
        return env


def _unit_of(
    expr: ast.expr, env: _UnitEnv, out: list[tuple[ast.AST, str, str, str]] | None
) -> str | None:
    """Evaluate *expr*'s unit; collect (node, kind, left, right) findings."""
    if isinstance(expr, ast.Name):
        return env.get(expr.id, _unit_from_name(expr.id))
    if isinstance(expr, ast.Attribute):
        return _unit_from_name(expr.attr)
    if isinstance(expr, ast.UnaryOp):
        return _unit_of(expr.operand, env, out)
    if isinstance(expr, ast.IfExp):
        a = _unit_of(expr.body, env, out)
        b = _unit_of(expr.orelse, env, out)
        _unit_of(expr.test, env, out)
        return a if a == b else None
    if isinstance(expr, ast.Compare):
        units = [_unit_of(expr.left, env, out)]
        units.extend(_unit_of(c, env, out) for c in expr.comparators)
        known = [u for u in units if u is not None]
        if out is not None and len(set(known)) > 1:
            pair = sorted(set(known))
            out.append((expr, "compare", pair[0], pair[1]))
        return None
    if isinstance(expr, ast.BoolOp):
        for operand in expr.values:
            _unit_of(operand, env, out)
        return None
    if isinstance(expr, ast.BinOp):
        left = _unit_of(expr.left, env, out)
        right = _unit_of(expr.right, env, out)
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            if left is not None and right is not None:
                if left != right:
                    if out is not None:
                        out.append((expr, "arith", left, right))
                    return None
                return left
            return left or right
        if isinstance(expr.op, ast.Mult):
            pair = {left, right}
            if pair == {_BW, _TIME}:
                return _BYTES
            return None
        if isinstance(expr.op, (ast.Div, ast.FloorDiv)):
            if left == _BYTES and right == _TIME:
                return _BW
            if left == _BYTES and right == _BW:
                return _TIME
            if left is not None and left == right:
                return None  # dimensionless ratio
            if left is not None and right is None:
                return left  # scaling by a plain number
            return None
        return None
    if isinstance(expr, ast.Call):
        return _unit_of_call(expr, env, out)
    return None


def _unit_of_call(
    call: ast.Call, env: _UnitEnv, out: list[tuple[ast.AST, str, str, str]] | None
) -> str | None:
    name: str | None = None
    if isinstance(call.func, ast.Name):
        name = call.func.id
    elif isinstance(call.func, ast.Attribute):
        dotted = dotted_name(call.func)
        if dotted is not None and dotted.startswith("units."):
            name = call.func.attr
    arg_units = [_unit_of(arg, env, out) for arg in call.args]
    for kw in call.keywords:
        kw_unit = _unit_of(kw.value, env, out)
        if kw.arg is None or kw_unit is None:
            continue
        expected = _unit_from_name(kw.arg)
        if expected is not None and expected != kw_unit and out is not None:
            out.append((kw.value, f"kwarg {kw.arg}", expected, kw_unit))
    if name is not None:
        sink = _UNIT_SINKS.get(name)
        if (
            sink is not None
            and arg_units
            and arg_units[0] is not None
            and arg_units[0] != sink
            and out is not None
        ):
            out.append((call, f"argument of {name}()", sink, arg_units[0]))
        ctor = _UNIT_CONSTRUCTORS.get(name)
        if ctor is not None:
            return ctor
        if name in ("int", "float", "round", "abs"):
            return arg_units[0] if arg_units else None
        if name in ("min", "max", "sum"):
            known = {u for u in arg_units if u is not None}
            if len(known) > 1 and out is not None:
                pair = sorted(known)
                out.append((call, f"arguments of {name}()", pair[0], pair[1]))
            return arg_units[0] if len(known) == 1 and arg_units else None
    return None


def _unit_effects(
    stmt: ast.stmt,
    env: _UnitEnv,
    out: list[tuple[ast.AST, str, str, str]] | None,
    callgraph: CallGraph | None,
) -> None:
    # evaluate every expression the statement contains (for findings),
    # then apply bindings
    if isinstance(stmt, ast.AugAssign):
        target_unit: str | None = None
        if isinstance(stmt.target, ast.Name):
            target_unit = env.get(stmt.target.id, _unit_from_name(stmt.target.id))
        elif isinstance(stmt.target, ast.Attribute):
            target_unit = _unit_from_name(stmt.target.attr)
        value_unit = _unit_of(stmt.value, env, out)
        if (
            target_unit is not None
            and value_unit is not None
            and target_unit != value_unit
            and isinstance(stmt.op, (ast.Add, ast.Sub))
            and out is not None
        ):
            out.append((stmt, "augmented assignment", target_unit, value_unit))
        return
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        value = _assign_value(stmt)
        if value is None:
            return
        value_unit = _unit_of(value, env, out)
        for target in _assign_targets(stmt):
            if isinstance(target, ast.Name):
                declared = _unit_from_name(target.id)
                if (
                    declared is not None
                    and value_unit is not None
                    and declared != value_unit
                    and out is not None
                ):
                    out.append((stmt, f"assignment to {target.id}", declared, value_unit))
                if value_unit is not None:
                    env[target.id] = value_unit
                else:
                    env.pop(target.id, None)
            elif isinstance(target, ast.Tuple):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        env.pop(element.id, None)
        return
    # positional arguments into known in-tree callees
    if callgraph is not None and out is not None:
        for call in _calls_in(stmt):
            callee: str | None = None
            if isinstance(call.func, ast.Name):
                callee = call.func.id
            elif isinstance(call.func, ast.Attribute):
                callee = call.func.attr
            if callee is None or callee in _UNIT_SINKS or callee in _UNIT_CONSTRUCTORS:
                continue
            params = callgraph.unique_params(callee)
            if params is None:
                continue
            offset = 1 if params and params[0] in ("self", "cls") else 0
            for index, arg in enumerate(call.args):
                if offset + index >= len(params):
                    break
                expected = _unit_from_name(params[offset + index])
                if expected is None:
                    continue
                got = _unit_of(arg, env, None)
                if got is not None and got != expected:
                    out.append(
                        (arg, f"argument {params[offset + index]!r}", expected, got)
                    )
    # remaining statements get their header expressions checked
    for probe in probe_exprs(stmt):
        if isinstance(probe, ast.expr):
            _unit_of(probe, env, out)
        elif isinstance(probe, ast.stmt):
            for child in ast.iter_child_nodes(probe):
                if isinstance(child, ast.expr):
                    _unit_of(child, env, out)
    for name in _loop_bound_names(stmt):
        env.pop(name, None)


class UnitConfusionRule(FlowRule):
    """LMP013 — nanoseconds and bytes mixing in one expression.

    Taint starts at the :mod:`repro.units` constructors (``ns``/``us``/
    ``ms`` vs ``kib``/``mib``/``gib`` vs ``gbps``) and at ``*_ns`` /
    ``*_bytes`` names, and flows through assignments.  Adding,
    subtracting, comparing, or min/max-ing a time against a size — or
    passing one where the parameter name declares the other — is
    silent corruption no runtime layer can see (both are plain
    numbers), so it is an error here.
    """

    id = "LMP013"
    title = "unit confusion (ns vs bytes vs bandwidth)"

    def check_function(self, cfg: CFG, ctx: FlowContext) -> list[Violation]:
        result = solve(cfg, _UnitDomain())
        findings: list[Violation] = []
        seen: set[tuple[int, int, str]] = set()
        for node in cfg.statements():
            if node.stmt is None:
                continue
            incoming = result.before(node.id)
            env = dict(incoming) if incoming is not None else {}
            hits: list[tuple[ast.AST, str, str, str]] = []
            _unit_effects(node.stmt, env, hits, ctx.callgraph)
            for where, kind, left, right in hits:
                key = (
                    getattr(where, "lineno", node.line),
                    getattr(where, "col_offset", 0),
                    kind,
                )
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    self.violation(
                        ctx,
                        where,
                        f"unit confusion in {kind}: {left} vs {right} "
                        "(ns-valued and bytes-valued expressions must not mix)",
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# LMP014 — yield discipline for sim-time waits
# ---------------------------------------------------------------------------

#: waits whose bare-statement result is silently dropped
_ENGINE_WAIT_ATTRS = frozenset(
    {"timeout", "acquire", "transfer", "migrate_extent", "relocate_extent_locally"}
)


class YieldDisciplineRule(FlowRule):
    """LMP014 — a sim-time wait that can never consume sim time.

    In the DES, time passes only when a generator *yields* an event.
    Two shapes silently break that: ``engine.timeout(d)`` (or
    ``sem.acquire()``, a transfer, a migration) as a bare statement —
    the event is created and dropped, the wait evaporates — and a call
    to an in-tree sim-time-consuming generator (one that yields waits,
    found through the call graph) whose generator object is discarded
    or yielded as a value instead of delegated with ``yield from`` or
    handed to ``engine.process(...)``.
    """

    id = "LMP014"
    title = "sim-time wait dropped without a yield"

    def check_function(self, cfg: CFG, ctx: FlowContext) -> list[Violation]:
        waiting = ctx.callgraph.time_consuming_generators()
        findings: list[Violation] = []
        for node in cfg.statements():
            stmt = node.stmt
            if not isinstance(stmt, ast.Expr):
                continue
            value = stmt.value
            if isinstance(value, ast.Call):
                findings.extend(self._bare_call(value, cfg, ctx, waiting))
            elif isinstance(value, ast.Yield) and isinstance(value.value, ast.Call):
                callee = self._callee_name(value.value)
                if callee in waiting:
                    findings.append(
                        self.violation(
                            ctx,
                            value.value,
                            f"yield of generator {callee}() yields the generator "
                            "object itself, not its waits; use `yield from "
                            f"{callee}(...)` (or run it as its own process)",
                        )
                    )
        return findings

    def _callee_name(self, call: ast.Call) -> str | None:
        if isinstance(call.func, ast.Name):
            return call.func.id
        if isinstance(call.func, ast.Attribute):
            return call.func.attr
        return None

    def _bare_call(
        self, call: ast.Call, cfg: CFG, ctx: FlowContext, waiting: frozenset[str]
    ) -> list[Violation]:
        _recv, attr = _attr_call(call)
        if attr == "transfer" and any(
            kw.arg == "on_complete" for kw in call.keywords
        ):
            # hybrid fluid handoff: `fluid.transfer(..., on_complete=cb)`
            # hands the wait to the solver's completion callback — the
            # event is consumed, just not by a yield
            return []
        if attr in _ENGINE_WAIT_ATTRS:
            where = "generator" if cfg.is_generator else "non-generator frame"
            return [
                self.violation(
                    ctx,
                    call,
                    f".{attr}() creates a sim-time event that this bare "
                    f"statement immediately drops ({where}); yield it, or the "
                    "wait never happens",
                )
            ]
        callee = self._callee_name(call)
        if callee in waiting and callee is not None:
            frame = "generator" if cfg.is_generator else "non-generator frame"
            fix = (
                f"delegate with `yield from {callee}(...)`"
                if cfg.is_generator
                else f"run it with `engine.process({callee}(...))`"
            )
            return [
                self.violation(
                    ctx,
                    call,
                    f"{callee}() is a sim-time-consuming generator; calling it "
                    f"from this {frame} and discarding the result means none "
                    f"of its waits ever run — {fix}",
                )
            ]
        return []


# ---------------------------------------------------------------------------
# LMP015 — dead store to a charged-cost accumulator
# ---------------------------------------------------------------------------

_LiveSet = frozenset[str]


class _LivenessDomain(Domain[_LiveSet]):
    direction = BACKWARD

    def boundary(self, cfg: CFG) -> _LiveSet:
        return frozenset()

    def bottom(self, cfg: CFG) -> _LiveSet:
        return frozenset()

    def join(self, a: _LiveSet, b: _LiveSet) -> _LiveSet:
        return a | b

    def transfer(self, node: Node, value: _LiveSet) -> _LiveSet:
        if node.stmt is None:
            return value
        defs, uses = _defs_uses(node.stmt)
        return (value - defs) | uses


def _defs_uses(stmt: ast.stmt) -> tuple[frozenset[str], frozenset[str]]:
    """Names this statement's *node* stores and loads (header-granular:
    a compound statement's body belongs to other nodes)."""
    defs: set[str] = set()
    uses: set[str] = set()
    for probe in probe_exprs(stmt):
        for node in ast.walk(probe):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Store):
                    defs.add(node.id)
                else:
                    uses.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # free variables of nested functions count as uses
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Name) and isinstance(inner.ctx, ast.Load):
                        uses.add(inner.id)
    if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
        uses.add(stmt.target.id)
    return frozenset(defs), frozenset(uses)


def _is_cost_name(name: str) -> bool:
    return "cost" in name.lower() and not name.startswith("_")


class DeadCostStoreRule(FlowRule):
    """LMP015 — a cost computed but never charged.

    The honest-accounting contract (compaction, migration, transfers)
    is that every modeled cost reaches the DES clock — as a
    ``yield engine.timeout(cost_ns)``, a field on a report, or a
    metrics charge.  A store to a cost-named variable whose value is
    dead on every outgoing path is a cost the model computed and then
    silently discarded: the scenario's timing claims are quietly wrong.
    """

    id = "LMP015"
    title = "dead store to a charged-cost accumulator"

    def check_function(self, cfg: CFG, ctx: FlowContext) -> list[Violation]:
        result = solve(cfg, _LivenessDomain())
        # a statement can occupy several CFG nodes (finally bodies are
        # instantiated once per continuation); the store is dead only
        # when it is dead in EVERY instance — a cost read on the normal
        # fall-through is charged even if the exception instance dies
        candidates: dict[int, tuple[ast.stmt, str, list[bool]]] = {}
        for node in cfg.statements():
            stmt = node.stmt
            target: ast.Name | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                candidate = stmt.targets[0]
                if isinstance(candidate, ast.Name):
                    target = candidate
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                if isinstance(stmt.target, ast.Name) and _assign_value(stmt) is not None:
                    target = stmt.target
            if target is None or not _is_cost_name(target.id):
                continue
            assert stmt is not None
            entry = candidates.setdefault(id(stmt), (stmt, target.id, []))
            entry[2].append(target.id not in result.after(node.id))
        findings: list[Violation] = []
        for stmt, name, dead in candidates.values():
            if all(dead):
                findings.append(
                    self.violation(
                        ctx,
                        stmt,
                        f"cost accumulator {name!r} is computed here but "
                        "never read afterwards on any path — the cost is never "
                        "charged to the DES clock (or any report)",
                    )
                )
        return findings


#: every flow rule, in id order — the flow pass's registry
FLOW_RULES: tuple[FlowRule, ...] = (
    HandleLifecycleRule(),
    ResourceLeakRule(),
    UnitConfusionRule(),
    YieldDisciplineRule(),
    DeadCostStoreRule(),
)


def analyze_module_tree(
    tree: ast.AST, ctx: FlowContext, rules: _t.Sequence[FlowRule]
) -> list[Violation]:
    """Run *rules* over every function in an already-parsed module."""
    applicable = [rule for rule in rules if rule.applies(ctx)]
    if not applicable:
        return []
    violations: list[Violation] = []
    for func in iter_functions(tree):
        cfg = build_cfg(func)
        for rule in applicable:
            violations.extend(rule.check_function(cfg, ctx))
    # per-continuation finally instances duplicate statement nodes;
    # identical findings from two instances collapse to one
    unique: dict[tuple[int, int, str, str], Violation] = {}
    for violation in violations:
        key = (violation.line, violation.col, violation.rule_id, violation.message)
        unique.setdefault(key, violation)
    violations = list(unique.values())
    violations.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return violations
