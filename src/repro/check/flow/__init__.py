"""Flow-sensitive static analysis: CFG, dataflow solver, LMP011–LMP015.

The subpackage splits into the engine and the rules that ride on it:

* :mod:`~repro.check.flow.cfg` — intraprocedural CFG builder with
  correct edges for ``try/except/finally``, ``with``, ``while/else``,
  and generator ``yield`` suspension points;
* :mod:`~repro.check.flow.solver` — generic worklist fixpoint over
  pluggable abstract domains, forward or backward;
* :mod:`~repro.check.flow.callgraph` — name-based call graph of the
  analyzed tree (sim-time-consuming generators, parameter names);
* :mod:`~repro.check.flow.rules` — the five flow rules;
* :mod:`~repro.check.flow.analyze` — the parse-once driver;
* :mod:`~repro.check.flow.mutants` — the seeded-defect self-test
  behind ``repro check --flow --mutants``.
"""

from repro.check.flow.analyze import analyze_paths, analyze_source
from repro.check.flow.callgraph import CallGraph, FunctionInfo
from repro.check.flow.cfg import CFG, Edge, Node, build_cfg, iter_functions
from repro.check.flow.rules import FLOW_RULES, FlowContext, FlowRule
from repro.check.flow.solver import DataflowResult, Domain, solve

__all__ = [
    "CFG",
    "CallGraph",
    "DataflowResult",
    "Domain",
    "Edge",
    "FLOW_RULES",
    "FlowContext",
    "FlowRule",
    "FunctionInfo",
    "Node",
    "analyze_paths",
    "analyze_source",
    "build_cfg",
    "iter_functions",
    "solve",
]
