"""A generic worklist dataflow solver over pluggable abstract domains.

The flow rules each define a :class:`Domain`: a join-semilattice of
abstract values plus a per-statement transfer function.  The solver
iterates the CFG to a fixpoint — forward for reaching-facts analyses
(handle states, held resources, unit taint), backward for liveness
(the dead-cost-store rule) — and hands back the value *before* and
*after* every node.

Two conventions keep the solver honest about exceptions:

* along an ``exception`` edge out of a forward analysis, the solver
  propagates ``join(before, after)`` of the raising node — the
  statement may have executed partially, so facts from either side of
  it can hold in the handler;
* node order is deterministic (ascending node id, which is creation
  order), so two runs over the same source produce identical results —
  the same discipline the rest of ``repro.check`` holds itself to.
"""

from __future__ import annotations

import collections
import typing as _t

from repro.check.flow.cfg import CFG, EXCEPTION, Node

T = _t.TypeVar("T")

FORWARD = "forward"
BACKWARD = "backward"


class Domain(_t.Generic[T]):
    """One abstract domain: lattice + transfer.  Subclasses override."""

    #: ``forward`` or ``backward``
    direction: _t.ClassVar[str] = FORWARD

    def boundary(self, cfg: CFG) -> T:
        """Value at the entry (forward) or the exits (backward)."""
        raise NotImplementedError

    def bottom(self, cfg: CFG) -> T:
        """Identity element for :meth:`join` (the "no paths yet" value)."""
        raise NotImplementedError

    def join(self, a: T, b: T) -> T:
        raise NotImplementedError

    def transfer(self, node: Node, value: T) -> T:
        """Abstract effect of *node* on *value* (must not mutate it)."""
        raise NotImplementedError

    def exception_value(self, node: Node, before: T, after: T) -> T:
        """Value carried by an exception edge *out of* this node.

        Default: ``join(before, after)`` — the statement may have run
        partially.  Domains override this when an effect is atomic with
        the statement's success (a grant that binds its handle cannot
        have happened if the binding statement raised)."""
        return self.join(before, after)


@_t.final
class DataflowResult(_t.Generic[T]):
    """Fixpoint values around every node of one CFG."""

    def __init__(self, cfg: CFG, before: dict[int, T], after: dict[int, T]) -> None:
        self.cfg = cfg
        self._before = before
        self._after = after

    def before(self, node_id: int) -> T:
        """Value on entry to the node (forward) / after it (backward
        analyses still index by execution order: ``before`` is the
        fact-set flowing *into* the transfer function's input side)."""
        return self._before[node_id]

    def after(self, node_id: int) -> T:
        return self._after[node_id]


def solve(cfg: CFG, domain: Domain[T], max_iterations: int = 100_000) -> DataflowResult[T]:
    """Iterate *domain* over *cfg* to a fixpoint.

    ``max_iterations`` is a safety valve against a non-monotone domain;
    hitting it raises rather than silently reporting a half-converged
    (and therefore nondeterministic-looking) result.
    """
    forward = domain.direction == FORWARD
    before: dict[int, T] = {}
    after: dict[int, T] = {}
    node_ids = sorted(cfg.nodes)
    for node_id in node_ids:
        before[node_id] = domain.bottom(cfg)
        after[node_id] = domain.bottom(cfg)
    if forward:
        before[cfg.entry] = domain.boundary(cfg)
    else:
        before[cfg.exit] = domain.boundary(cfg)
        before[cfg.raise_exit] = domain.boundary(cfg)

    worklist: collections.deque[int] = collections.deque(node_ids)
    queued = set(node_ids)
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError(
                f"dataflow failed to converge after {max_iterations} iterations "
                f"({cfg.func.name}:{cfg.func.lineno})"
            )
        node_id = worklist.popleft()
        queued.discard(node_id)
        node = cfg.node(node_id)

        if forward:
            incoming = domain.bottom(cfg)
            if node_id == cfg.entry:
                incoming = domain.boundary(cfg)
            for edge in node.pred:
                if edge.kind == EXCEPTION:
                    # the raising statement may have run partially
                    contribution = domain.exception_value(
                        cfg.node(edge.src), before[edge.src], after[edge.src]
                    )
                else:
                    contribution = after[edge.src]
                incoming = domain.join(incoming, contribution)
            before_changed = incoming != before[node_id]
            before[node_id] = incoming
            new_after = domain.transfer(node, incoming)
            after_changed = new_after != after[node_id]
            if after_changed:
                after[node_id] = new_after
            # exception successors read `before` too (via
            # `exception_value`), so they requeue when either side
            # changed; normal successors only read `after`
            for edge in node.succ:
                if edge.kind == EXCEPTION:
                    changed = before_changed or after_changed
                else:
                    changed = after_changed
                if changed and edge.dst not in queued:
                    queued.add(edge.dst)
                    worklist.append(edge.dst)
        else:
            outgoing = domain.bottom(cfg)
            if node_id in (cfg.exit, cfg.raise_exit):
                outgoing = domain.boundary(cfg)
            for edge in node.succ:
                outgoing = domain.join(outgoing, before[edge.dst])
            after[node_id] = outgoing
            new_before = domain.transfer(node, outgoing)
            if new_before != before[node_id]:
                before[node_id] = new_before
                for edge in node.pred:
                    if edge.src not in queued:
                        queued.add(edge.src)
                        worklist.append(edge.src)

    return DataflowResult(cfg, before, after)
