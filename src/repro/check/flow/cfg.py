"""Intraprocedural control-flow graphs for Python functions.

The single-pass AST rules in :mod:`repro.check.rules` cannot see that a
handle freed on one branch is used on the next line, or that a lease is
released on the happy path but not on the exception path — those facts
live in the *control-flow graph*.  This module builds one CFG per
function with the edges the flow rules (LMP011–LMP015) need:

* one node per statement (plus synthetic ``entry`` / ``exit`` /
  ``raise-exit`` / handler / finally-entry nodes), so transfer
  functions stay statement-granular;
* ``exception`` edges from every statement that can raise (a call, a
  ``yield`` — interrupts arrive through yields — a ``raise``, an
  ``assert``) to the innermost handler chain, and from unmatched
  handlers outward;
* ``finally`` bodies instantiated once per continuation kind (normal
  completion, exception propagation, ``return``, and per-loop
  ``break`` / ``continue``), so an exceptional entry resumes its
  exception after the finally instead of leaking a fake path into the
  normal fall-through — sharing one instance across continuations
  would merge "raised" and "completed" states at the join;
* ``back`` edges for loop repetition so the worklist solver reaches a
  fixpoint over loop-carried state, and ``while``/``for`` ``else``
  clauses entered from the loop test (they run only when no ``break``
  fired);
* ``yield`` suspension points marked on their statement nodes —
  generators are the DES's process bodies, and several rules treat a
  suspension as both a can-raise point and a scheduling boundary.

The graph is deliberately *conservative*: it may contain edges no real
execution follows (a finally shared by two continuations), but every
real execution follows some path in the graph.  Rules that report
"on some path" findings therefore never miss a real path.
"""

from __future__ import annotations

import ast
import dataclasses
import typing as _t

#: edge kinds
NORMAL = "normal"
EXCEPTION = "exception"
BACK = "back"

#: synthetic node kinds (``stmt`` nodes carry the AST statement)
ENTRY = "entry"
EXIT = "exit"
RAISE_EXIT = "raise-exit"
STMT = "stmt"
HANDLER = "handler"
FINALLY = "finally"


@dataclasses.dataclass(frozen=True)
class Edge:
    """A directed CFG edge with its kind (normal / exception / back)."""

    src: int
    dst: int
    kind: str


@dataclasses.dataclass
class Node:
    """One CFG node: a statement or a synthetic control point."""

    id: int
    kind: str
    stmt: ast.stmt | None = None
    #: the statement contains a Yield / YieldFrom (a suspension point)
    is_yield: bool = False
    succ: list[Edge] = dataclasses.field(default_factory=list)
    pred: list[Edge] = dataclasses.field(default_factory=list)

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    def describe(self) -> str:
        if self.stmt is not None:
            return f"{type(self.stmt).__name__}@{self.line}"
        return self.kind


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.nodes: dict[int, Node] = {}
        self._next_id = 0
        self.entry = self._new(ENTRY).id
        self.exit = self._new(EXIT).id
        self.raise_exit = self._new(RAISE_EXIT).id
        self.is_generator = _is_generator(func)

    # -- construction ------------------------------------------------------

    def _new(self, kind: str, stmt: ast.stmt | None = None) -> Node:
        node = Node(id=self._next_id, kind=kind, stmt=stmt)
        self._next_id += 1
        self.nodes[node.id] = node
        return node

    def add_edge(self, src: int, dst: int, kind: str = NORMAL) -> None:
        for edge in self.nodes[src].succ:
            if edge.dst == dst and edge.kind == kind:
                return  # dedupe: finally merging can re-derive an edge
        edge = Edge(src=src, dst=dst, kind=kind)
        self.nodes[src].succ.append(edge)
        self.nodes[dst].pred.append(edge)

    # -- queries -----------------------------------------------------------

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def statements(self) -> list[Node]:
        """Statement nodes in source order (synthetic nodes excluded)."""
        stmts = [n for n in self.nodes.values() if n.stmt is not None]
        stmts.sort(key=lambda n: (n.line, n.id))
        return stmts

    def exits(self) -> tuple[int, int]:
        """(normal exit, exceptional exit) node ids."""
        return self.exit, self.raise_exit

    def edges(self) -> list[Edge]:
        return [e for node in self.nodes.values() for e in node.succ]

    def describe_edges(self) -> set[tuple[str, str, str]]:
        """``(src, dst, kind)`` descriptions — the golden-test surface."""
        return {
            (self.nodes[e.src].describe(), self.nodes[e.dst].describe(), e.kind)
            for e in self.edges()
        }


def _is_generator(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when *func* itself contains a yield (nested defs excluded)."""
    for node in _walk_shallow(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _walk_shallow(func: ast.AST) -> _t.Iterator[ast.AST]:
    """Walk *func* without descending into nested function/class defs."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def probe_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """The expressions a *node* for this statement actually evaluates.

    Compound statements get a node for their header only (the test, the
    iterable, the context managers); their bodies become nodes of their
    own, so probing the whole subtree would misattribute effects.
    Transfer functions must use this too: an ``If`` node's abstract
    effect is its test's, never its body's.
    """
    if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def _contains_yield(stmt: ast.stmt) -> bool:
    return any(
        isinstance(n, (ast.Yield, ast.YieldFrom))
        for probe in probe_exprs(stmt)
        for n in _walk_shallow(probe)
    ) or any(
        isinstance(probe, (ast.Yield, ast.YieldFrom)) for probe in probe_exprs(stmt)
    )


def _can_raise(stmt: ast.stmt) -> bool:
    """Conservative can-raise test: calls, yields (thrown-in exceptions
    arrive through them), ``raise``, ``assert``, and ``await``."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for probe in probe_exprs(stmt):
        if isinstance(probe, (ast.Call, ast.Yield, ast.YieldFrom, ast.Await)):
            return True
        for node in _walk_shallow(probe):
            if isinstance(node, (ast.Call, ast.Yield, ast.YieldFrom, ast.Await)):
                return True
    return False


def _irrefutable(case: ast.match_case) -> bool:
    """True when the case always matches: an unguarded wildcard or bare
    capture (``case _:`` / ``case name:``), or an ``|``-pattern with an
    irrefutable alternative."""
    if case.guard is not None:
        return False

    def _pat(pattern: ast.pattern) -> bool:
        if isinstance(pattern, ast.MatchAs):
            return pattern.pattern is None or _pat(pattern.pattern)
        if isinstance(pattern, ast.MatchOr):
            return any(_pat(p) for p in pattern.patterns)
        return False

    return _pat(case.pattern)


@dataclasses.dataclass
class _TryCtx:
    """Exception routing for the innermost enclosing ``try`` (or the
    function body, whose targets are ``[raise_exit]``)."""

    #: nodes a raising statement gets exception edges to (handler
    #: headers, a finally entry, or the raise-exit)
    targets: list[int]
    #: entry of the exception-propagation finally instance, if this
    #: level has a finalbody (doubles as the "has a finally" marker)
    finally_entry: int | None = None
    #: continuations captured while building the protected region:
    #: source nodes that must traverse a dedicated finally instance
    #: before proceeding (wired when the ``try`` completes)
    routes_exit: list[int] = dataclasses.field(default_factory=list)
    routes_break: list[tuple["_LoopCtx", int]] = dataclasses.field(default_factory=list)
    routes_continue: list[tuple["_LoopCtx", int]] = dataclasses.field(
        default_factory=list
    )


@dataclasses.dataclass
class _LoopCtx:
    """Break/continue routing for the innermost enclosing loop."""

    head: int
    #: ``len(self._trys)`` when the loop was entered — a ``break`` or
    #: ``continue`` exits only trys *inside* the loop (stack index >=
    #: this), so finallys of enclosing trys must NOT intercept it
    try_depth: int = 0
    breaks: list[int] = dataclasses.field(default_factory=list)


class _Builder:
    """Recursive statement-list CFG builder."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.cfg = CFG(func)
        self._trys: list[_TryCtx] = [_TryCtx(targets=[self.cfg.raise_exit])]
        self._loops: list[_LoopCtx] = []

    def build(self) -> CFG:
        outs = self._block(self.cfg.func.body, [self.cfg.entry])
        for out in outs:
            self.cfg.add_edge(out, self.cfg.exit)
        return self.cfg

    # -- helpers -----------------------------------------------------------

    def _exc_targets(self) -> list[int]:
        return self._trys[-1].targets

    def _pending_finally(self, since: int = 0) -> _TryCtx | None:
        """The innermost try level with an unwired finally, if any.

        *since* restricts the search to try levels entered at stack
        index >= ``since`` — break/continue pass the loop's
        ``try_depth`` so only finallys of trys *inside* the loop
        intercept them (a finally enclosing the loop does not run)."""
        for ctx in reversed(self._trys[since:]):
            if ctx.finally_entry is not None:
                return ctx
        return None

    def _stmt_node(self, stmt: ast.stmt, preds: list[int]) -> Node:
        node = self.cfg._new(STMT, stmt)
        node.is_yield = _contains_yield(stmt)
        for pred in preds:
            self.cfg.add_edge(pred, node.id)
        if _can_raise(stmt):
            for target in self._exc_targets():
                self.cfg.add_edge(node.id, target, EXCEPTION)
        return node

    def _block(self, stmts: _t.Sequence[ast.stmt], preds: list[int]) -> list[int]:
        current = list(preds)
        for stmt in stmts:
            current = self._stmt(stmt, current)
        return current

    # -- statement dispatch ------------------------------------------------

    def _stmt(self, stmt: ast.stmt, preds: list[int]) -> list[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, preds)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds)
        if isinstance(stmt, ast.Return):
            return self._return(stmt, preds)
        if isinstance(stmt, ast.Raise):
            node = self._stmt_node(stmt, preds)
            # a bare raise with no enclosing handler still has its
            # exception edges from _stmt_node; nothing falls through
            _ = node
            return []
        if isinstance(stmt, ast.Break):
            return self._break(stmt, preds)
        if isinstance(stmt, ast.Continue):
            return self._continue(stmt, preds)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, preds)
        # simple statements (and nested defs, treated as opaque bindings)
        node = self._stmt_node(stmt, preds)
        return [node.id]

    def _if(self, stmt: ast.If, preds: list[int]) -> list[int]:
        test = self._stmt_node(stmt, preds)
        body_outs = self._block(stmt.body, [test.id])
        if stmt.orelse:
            else_outs = self._block(stmt.orelse, [test.id])
        else:
            else_outs = [test.id]  # condition false: fall through
        return body_outs + else_outs

    def _while(self, stmt: ast.While, preds: list[int]) -> list[int]:
        head = self._stmt_node(stmt, preds)
        loop = _LoopCtx(head=head.id, try_depth=len(self._trys))
        self._loops.append(loop)
        body_outs = self._block(stmt.body, [head.id])
        self._loops.pop()
        for out in body_outs:
            self.cfg.add_edge(out, head.id, BACK)
        # while/else runs only when the condition goes false (no break)
        if stmt.orelse:
            else_outs = self._block(stmt.orelse, [head.id])
        else:
            else_outs = [head.id]
        return else_outs + loop.breaks

    def _for(self, stmt: ast.For | ast.AsyncFor, preds: list[int]) -> list[int]:
        head = self._stmt_node(stmt, preds)
        loop = _LoopCtx(head=head.id, try_depth=len(self._trys))
        self._loops.append(loop)
        body_outs = self._block(stmt.body, [head.id])
        self._loops.pop()
        for out in body_outs:
            self.cfg.add_edge(out, head.id, BACK)
        if stmt.orelse:
            else_outs = self._block(stmt.orelse, [head.id])
        else:
            else_outs = [head.id]
        return else_outs + loop.breaks

    def _with(self, stmt: ast.With | ast.AsyncWith, preds: list[int]) -> list[int]:
        node = self._stmt_node(stmt, preds)
        return self._block(stmt.body, [node.id])

    def _return(self, stmt: ast.Return, preds: list[int]) -> list[int]:
        node = self._stmt_node(stmt, preds)
        pending = self._pending_finally()
        if pending is None:
            self.cfg.add_edge(node.id, self.cfg.exit)
        else:
            pending.routes_exit.append(node.id)
        return []

    def _break(self, stmt: ast.Break, preds: list[int]) -> list[int]:
        node = self._stmt_node(stmt, preds)
        loop = self._loops[-1] if self._loops else None
        if loop is None:
            return []  # malformed source; parse already accepted it though
        pending = self._pending_finally(since=loop.try_depth)
        if pending is None:
            loop.breaks.append(node.id)
        else:
            pending.routes_break.append((loop, node.id))
        return []

    def _continue(self, stmt: ast.Continue, preds: list[int]) -> list[int]:
        node = self._stmt_node(stmt, preds)
        loop = self._loops[-1] if self._loops else None
        if loop is None:
            return []
        pending = self._pending_finally(since=loop.try_depth)
        if pending is None:
            self.cfg.add_edge(node.id, loop.head, BACK)
        else:
            pending.routes_continue.append((loop, node.id))
        return []

    def _match(self, stmt: ast.Match, preds: list[int]) -> list[int]:
        node = self._stmt_node(stmt, preds)
        outs: list[int] = []
        for case in stmt.cases:
            outs.extend(self._block(case.body, [node.id]))
        # no-case-matched fall-through — unless the last case is an
        # unguarded irrefutable pattern (`case _:` / `case name:`),
        # which always matches, so the spurious path would only dilute
        # must-analysis precision
        if not stmt.cases or not _irrefutable(stmt.cases[-1]):
            outs.append(node.id)
        return outs

    def _try(self, stmt: ast.Try, preds: list[int]) -> list[int]:
        outer_targets = self._exc_targets()

        # the exception-propagation instance must exist before the
        # protected region is built (raising statements target it);
        # after it runs the exception resumes outward
        fin_entry: int | None = None
        if stmt.finalbody:
            fin_node = self.cfg._new(FINALLY)
            fin_entry = fin_node.id
            # the finally body itself raises to the *outer* targets
            for out in self._block(stmt.finalbody, [fin_entry]):
                for target in outer_targets:
                    self.cfg.add_edge(out, target, EXCEPTION)

        propagate = [fin_entry] if fin_entry is not None else list(outer_targets)

        handler_nodes: list[Node] = []
        for handler in stmt.handlers:
            hnode = self.cfg._new(HANDLER, None)
            # the header re-raises outward when the clause doesn't match
            for target in propagate:
                self.cfg.add_edge(hnode.id, target, EXCEPTION)
            handler_nodes.append(hnode)
        # attach source info for handler headers via a pseudo statement:
        # the handler's first body statement carries the position instead

        ctx = _TryCtx(
            targets=[h.id for h in handler_nodes] + propagate,
            finally_entry=fin_entry,
        )
        self._trys.append(ctx)
        body_outs = self._block(stmt.body, preds)
        self._trys.pop()

        # try/else runs after a clean body; its exceptions skip this
        # try's handlers but still funnel through the finally.  The
        # else/handler contexts share ``ctx``'s route lists so a
        # return/break/continue captured there resumes after the
        # finally exactly like one captured in the protected body.
        def _resume_ctx() -> _TryCtx:
            return _TryCtx(
                targets=propagate,
                finally_entry=fin_entry,
                routes_exit=ctx.routes_exit,
                routes_break=ctx.routes_break,
                routes_continue=ctx.routes_continue,
            )

        if stmt.orelse:
            self._trys.append(_resume_ctx())
            body_outs = self._block(stmt.orelse, body_outs)
            self._trys.pop()

        handler_outs: list[int] = []
        for handler, hnode in zip(stmt.handlers, handler_nodes):
            self._trys.append(_resume_ctx())
            handler_outs.extend(self._block(handler.body, [hnode.id]))
            self._trys.pop()

        if fin_entry is None:
            return body_outs + handler_outs

        def _instance(preds_: list[int]) -> list[int]:
            """A fresh finally instance entered from *preds_*."""
            fnode = self.cfg._new(FINALLY)
            for pred in preds_:
                self.cfg.add_edge(pred, fnode.id)
            return self._block(stmt.finalbody, [fnode.id])

        # normal completions get their own instance and fall through
        outs: list[int] = []
        if body_outs + handler_outs:
            outs = _instance(body_outs + handler_outs)

        # a captured return resumes its journey after a dedicated
        # instance (possibly through the next enclosing finally)
        if ctx.routes_exit:
            exit_outs = _instance(ctx.routes_exit)
            pending = self._pending_finally()
            if pending is None:
                for out in exit_outs:
                    self.cfg.add_edge(out, self.cfg.exit)
            else:
                pending.routes_exit.extend(exit_outs)

        # break/continue get one instance per loop, then chain through
        # any finally of a try that is still inside that loop; a
        # finally *enclosing* the loop never sees them
        def _per_loop(
            routes: list[tuple[_LoopCtx, int]],
        ) -> list[tuple[_LoopCtx, list[int]]]:
            grouped: dict[int, tuple[_LoopCtx, list[int]]] = {}
            for loop, src in routes:
                grouped.setdefault(id(loop), (loop, []))[1].append(src)
            return list(grouped.values())

        for loop, srcs in _per_loop(ctx.routes_break):
            break_outs = _instance(srcs)
            pending = self._pending_finally(since=loop.try_depth)
            if pending is None:
                loop.breaks.extend(break_outs)
            else:
                pending.routes_break.extend((loop, out) for out in break_outs)
        for loop, srcs in _per_loop(ctx.routes_continue):
            continue_outs = _instance(srcs)
            pending = self._pending_finally(since=loop.try_depth)
            if pending is None:
                for out in continue_outs:
                    self.cfg.add_edge(out, loop.head, BACK)
            else:
                pending.routes_continue.extend((loop, out) for out in continue_outs)
        return outs


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder(func).build()


def iter_functions(
    tree: ast.AST,
) -> _t.Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in *tree*, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
