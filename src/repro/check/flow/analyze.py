"""Driver for the flow pass: parse once, build the call graph, run rules.

The whole pass holds one parse per file: the same tree feeds the call
graph (whole-tree facts for LMP013/LMP014) and the per-function CFG
construction.  Findings come back as the same
:class:`~repro.check.lint.FileReport` shape the classic linter emits,
so ``# noqa`` suppression and every output format work unchanged.
"""

from __future__ import annotations

import ast
import pathlib
import typing as _t

from repro.check.flow.callgraph import CallGraph
from repro.check.flow.rules import FLOW_RULES, FlowContext, FlowRule, analyze_module_tree
from repro.check.lint import FileReport, _suppressed_rules, iter_python_files
from repro.check.rules import Violation
from repro.errors import FlowAnalysisError


def _module_name(path: pathlib.Path) -> str:
    parts = list(path.parts)
    if "repro" in parts:
        parts = parts[parts.index("repro") :]
    stem = [p for p in parts[:-1]] + [path.stem]
    return ".".join(stem)


def _apply_noqa(source: str, violations: list[Violation]) -> tuple[Violation, ...]:
    suppressed = _suppressed_rules(source)
    if not suppressed:
        return tuple(violations)
    return tuple(
        v
        for v in violations
        if not (
            v.line in suppressed
            and (suppressed[v.line] is None or v.rule_id in (suppressed[v.line] or ()))
        )
    )


def analyze_paths(
    paths: _t.Sequence[pathlib.Path],
    rules: _t.Sequence[FlowRule] | None = None,
) -> list[FileReport]:
    """Run the flow rules over every python file under *paths*."""
    selected = tuple(rules) if rules is not None else FLOW_RULES
    files = iter_python_files(paths)
    parsed: list[tuple[pathlib.Path, str, ast.Module]] = []
    reports: list[FileReport] = []
    graph = CallGraph()
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, ValueError) as exc:
            reports.append(FileReport(path=path, violations=(), parse_error=str(exc)))
            continue
        except OSError as exc:
            raise FlowAnalysisError(f"cannot read {path}: {exc}") from exc
        graph.add_module(tree, path, _module_name(path))
        parsed.append((path, source, tree))
    for path, source, tree in parsed:
        ctx = FlowContext.for_path(path, graph)
        violations = _apply_noqa(source, analyze_module_tree(tree, ctx, selected))
        if violations:
            reports.append(
                FileReport(path=path, violations=violations, parse_error=None)
            )
    reports.sort(key=lambda r: str(r.path))
    return reports


def analyze_source(
    source: str,
    path: pathlib.Path | str = "<memory>",
    rules: _t.Sequence[FlowRule] | None = None,
) -> FileReport:
    """Flow-analyze a single in-memory module (tests and mutants)."""
    selected = tuple(rules) if rules is not None else FLOW_RULES
    p = pathlib.Path(path)
    try:
        tree = ast.parse(source, filename=str(p))
    except (SyntaxError, ValueError) as exc:
        return FileReport(path=p, violations=(), parse_error=str(exc))
    graph = CallGraph()
    graph.add_module(tree, p, _module_name(p))
    ctx = FlowContext.for_path(p, graph)
    violations = _apply_noqa(source, analyze_module_tree(tree, ctx, selected))
    return FileReport(path=p, violations=violations, parse_error=None)
