"""Dynamic race, lockset, and deadlock detection for shared logical memory.

The paper's headline capability — CXL 3.0 Global Shared FAM mapped by
several servers at once (§2, §3.2) — is exactly where unsynchronized
access bugs hide, and the simulator gives us something real hardware
never does: a single serialized interleaving we can annotate with full
happens-before metadata.  :class:`RaceSanitizer` exploits that with
three detectors:

* **Happens-before (vector clocks).**  Every simulation process carries
  a vector clock.  Fork (``engine.process``) and join (yielding a
  process, ``AllOf``/``AnyOf``) edges come from the
  :class:`~repro.sim.process.Process` monitor seam; release→acquire
  edges come from :class:`~repro.sim.resources.Semaphore` /
  :class:`~repro.sim.resources.Store` handoffs, from the
  ``core.coherence.sync`` primitives, and from coherence-directory
  load/store/rmw completions (a load is an acquire edge on its line's
  clock, a store a release edge, an rmw both — so any protocol built on
  coherent lines is ordered automatically).  Every shared-region frame
  (logical page) touched through the :class:`~repro.core.api.LmpSession`
  data path is shadowed with a last-writer epoch and last-reader clocks,
  FastTrack style; a write/write or read/write pair with no
  happens-before path is reported with both clocks as evidence.

* **Eraser-style lockset.**  A cheaper, stricter secondary detector: the
  candidate lockset of each frame is intersected with the semaphores and
  sync primitives held at every access.  If two or more processes touch
  a frame, at least one writes, and the intersection is empty, no single
  lock protects the frame — flagged even when fortunate scheduling made
  the interleaving happens-before clean.

* **Wait-for-graph deadlock detection.**  When an engine's event heap
  drains while monitored processes are still blocked, the detector
  builds the wait-for graph (process → process it waits on, process →
  holders of the semaphore/lock it queues on) and raises
  :class:`~repro.errors.DeadlockError` carrying the cycle.

All instrumentation is installed by monkey-patching and class-level
hook slots, exactly like :class:`~repro.check.sanitizers.AllocSanitizer`
— with no sanitizer installed the hooks are single ``is None`` tests,
so the engine hot path stays at full speed (the ``bench_cluster.py
--smoke`` CI job guards this).
"""

from __future__ import annotations

import contextlib
import dataclasses
import typing as _t

from repro.core.api import LmpSession, SessionObserver
from repro.core.coherence.protocol import CoherenceDirectory
from repro.core.coherence.sync import CohortLock, SpinLock, TicketLock
from repro.errors import DataRaceError, DeadlockError, LocksetError, SimulationError
from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf, Event
from repro.sim.process import Process
from repro.sim.resources import Semaphore, Store

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.buffer import Buffer

#: cap on recorded reports (state keeps accumulating; only reporting stops)
MAX_REPORTS = 64
#: cap on per-frame access history kept for lockset evidence
_HISTORY = 8


def _join(into: dict[int, int], other: dict[int, int]) -> None:
    """Pointwise max: ``into`` := ``into`` ⊔ ``other``."""
    for pid, tick in other.items():
        if tick > into.get(pid, 0):
            into[pid] = tick


def _clock_str(clock: _t.Mapping[int, int]) -> str:
    inner = ", ".join(f"{pid}:{tick}" for pid, tick in sorted(clock.items()))
    return "{" + inner + "}"


@dataclasses.dataclass(frozen=True)
class FrameAccess:
    """One recorded access to a shared frame — the evidence unit."""

    pid: int
    process: str  #: process name at access time
    op: str  #: "read" or "write"
    frame: str  #: human-readable frame key, e.g. "pool#1:page12"
    buffer: str
    time: float  #: simulation time of the issuing call
    epoch: int  #: issuer's own clock component at access time
    clock: dict[int, int]  #: full vector clock snapshot
    locks: frozenset[str]  #: resources held at access time

    def describe(self) -> str:
        held = "{" + ", ".join(sorted(self.locks)) + "}"
        return (
            f"{self.op} by process {self.process!r} (pid {self.pid}) "
            f"at t={self.time:g}ns, epoch {self.epoch}@{self.pid}, "
            f"clock {_clock_str(self.clock)}, locks held {held}"
        )

    def to_json(self) -> dict[str, _t.Any]:
        return {
            "pid": self.pid,
            "process": self.process,
            "op": self.op,
            "frame": self.frame,
            "buffer": self.buffer,
            "time": self.time,
            "epoch": self.epoch,
            "clock": {str(k): v for k, v in sorted(self.clock.items())},
            "locks": sorted(self.locks),
        }


@dataclasses.dataclass(frozen=True)
class RaceReport:
    """A pair of conflicting accesses with no happens-before path."""

    kind: str  #: "write-write", "write-read", or "read-write"
    frame: str
    earlier: FrameAccess
    later: FrameAccess

    def render(self) -> str:
        missing = self.later.clock.get(self.earlier.pid, 0)
        return "\n".join(
            [
                f"data race ({self.kind}) on frame {self.frame}"
                f" (buffer {self.earlier.buffer!r})",
                f"  earlier: {self.earlier.describe()}",
                f"  later:   {self.later.describe()}",
                f"  no happens-before path: later.clock[{self.earlier.pid}] ="
                f" {missing} < {self.earlier.epoch} = earlier epoch",
                "  (no coherence transition, sync-primitive handoff, resource"
                " grant, or fork/join edge orders these accesses)",
            ]
        )

    def to_json(self) -> dict[str, _t.Any]:
        return {
            "kind": self.kind,
            "frame": self.frame,
            "earlier": self.earlier.to_json(),
            "later": self.later.to_json(),
        }


@dataclasses.dataclass(frozen=True)
class LocksetReport:
    """A frame whose Eraser candidate lockset went empty."""

    frame: str
    buffer: str
    access: FrameAccess  #: the access that emptied the lockset
    history: tuple[tuple[str, str, frozenset[str]], ...]  #: (process, op, locks)

    def render(self) -> str:
        lines = [
            f"lockset violation on frame {self.frame} (buffer {self.buffer!r}):"
            " no single lock protects it",
            f"  emptied by: {self.access.describe()}",
            "  access history (process, op, locks held):",
        ]
        for process, op, locks in self.history:
            held = "{" + ", ".join(sorted(locks)) + "}"
            lines.append(f"    {process!r} {op} holding {held}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, _t.Any]:
        return {
            "frame": self.frame,
            "buffer": self.buffer,
            "access": self.access.to_json(),
            "history": [
                {"process": process, "op": op, "locks": sorted(locks)}
                for process, op, locks in self.history
            ],
        }


@dataclasses.dataclass
class _ProcInfo:
    """Shadow state for one monitored process."""

    pid: int
    proc: Process | None  #: strong ref (Process has __slots__, no weakrefs)
    name: str
    clock: dict[int, int]
    held: list[str]  #: labels of resources currently held


@dataclasses.dataclass
class _SyncState:
    """Shadow state for one semaphore / sync primitive / store."""

    obj: _t.Any
    label: str
    clock: dict[int, int] = dataclasses.field(default_factory=dict)
    holders: set[int] = dataclasses.field(default_factory=set)


@dataclasses.dataclass
class _Grant:
    """A pending event whose firing carries a sync edge to the resumer."""

    event: Event
    kind: str  #: "sem.acquire" | "lock.acquire" | "store.get"
    state: _SyncState


@dataclasses.dataclass
class _FrameState:
    """Shadow state for one shared frame (logical page)."""

    writer: FrameAccess | None = None
    readers: dict[int, FrameAccess] = dataclasses.field(default_factory=dict)
    lockset: frozenset[str] | None = None  #: None = no access yet (universe)
    procs: set[int] = dataclasses.field(default_factory=set)
    wrote: bool = False
    lockset_reported: bool = False
    history: list[tuple[str, str, frozenset[str]]] = dataclasses.field(
        default_factory=list
    )


class RaceSanitizer(SessionObserver):
    """Happens-before + lockset + deadlock detection over the simulator.

    Usage::

        detector = RaceSanitizer()          # all three detectors
        with detector.installed():
            run_scenario()
        detector.assert_clean()             # raises DataRaceError/LocksetError

    Sub-detectors opt out individually: ``RaceSanitizer(lockset=False)``.
    Deadlocks raise :class:`~repro.errors.DeadlockError` *during* the
    run (at the drain point); races and lockset violations accumulate in
    :attr:`races` / :attr:`lockset_reports` for post-run inspection.
    """

    _active: _t.ClassVar["RaceSanitizer | None"] = None

    def __init__(
        self, hb: bool = True, lockset: bool = True, deadlock: bool = True
    ) -> None:
        self.hb = hb
        self.lockset = lockset
        self.deadlock = deadlock
        self.races: list[RaceReport] = []
        self.lockset_reports: list[LocksetReport] = []
        self.frames_tracked = 0
        self.accesses_seen = 0
        self.reset()

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Drop all shadow state and reports (keeps the detector installed)."""
        self.races = []
        self.lockset_reports = []
        self.frames_tracked = 0
        self.accesses_seen = 0
        self._next_pid = 1
        self._root = _ProcInfo(pid=0, proc=None, name="<top-level>", clock={0: 1}, held=[])
        self._current: _ProcInfo | None = None
        self._procs: dict[int, _ProcInfo] = {}  # id(proc) -> info
        self._grants: dict[int, _Grant] = {}  # id(event) -> pending sync edge
        self._syncs: dict[int, _SyncState] = {}  # id(resource) -> state
        self._frames: dict[tuple[int, int], _FrameState] = {}
        self._line_clocks: dict[tuple[int, int], dict[int, int]] = {}
        self._pools: dict[int, tuple[_t.Any, int]] = {}  # id(pool) -> (pool, seq)
        self._engines: dict[int, tuple[Engine, dict[int, int]]] = {}
        self._race_keys: set[tuple[_t.Any, ...]] = set()

    def install(self) -> None:
        if RaceSanitizer._active is not None:
            raise SimulationError("RaceSanitizer is already installed")
        RaceSanitizer._active = self
        Process._monitor = self
        Engine._monitor = self
        LmpSession._access_monitor = self
        CoherenceDirectory._race_hook = self._on_line_op
        self._patch_resources()

    def uninstall(self) -> None:
        if RaceSanitizer._active is not self:
            raise SimulationError("this RaceSanitizer is not installed")
        self._unpatch_resources()
        CoherenceDirectory._race_hook = None
        LmpSession._access_monitor = None
        Engine._monitor = None
        Process._monitor = None
        RaceSanitizer._active = None
        # Reports stay for inspection; shadow refs are dropped so engines,
        # processes and pools from the monitored run can be collected.
        self._procs.clear()
        self._grants.clear()
        self._syncs.clear()
        self._frames.clear()
        self._line_clocks.clear()
        self._pools.clear()
        self._engines.clear()
        self._current = None

    @contextlib.contextmanager
    def installed(self) -> _t.Iterator["RaceSanitizer"]:
        self.install()
        try:
            yield self
        finally:
            self.uninstall()

    @property
    def clean(self) -> bool:
        return not self.races and not self.lockset_reports

    def assert_clean(self) -> None:
        """Raise on accumulated findings (deadlocks already raised in-run)."""
        if self.races:
            raise DataRaceError(
                f"{len(self.races)} data race(s) detected:\n\n"
                + "\n\n".join(r.render() for r in self.races)
            )
        if self.lockset_reports:
            raise LocksetError(
                f"{len(self.lockset_reports)} lockset violation(s) detected:\n\n"
                + "\n\n".join(r.render() for r in self.lockset_reports)
            )

    # -- monkey patches over sim.resources / coherence.sync ----------------

    def _patch_resources(self) -> None:
        det = self
        self._saved: dict[_t.Any, dict[str, _t.Any]] = {
            Semaphore: {"acquire": Semaphore.acquire, "release": Semaphore.release},
            Store: {"put": Store.put, "get": Store.get},
        }
        orig_sem_acquire = Semaphore.acquire
        orig_sem_release = Semaphore.release
        orig_put = Store.put
        orig_get = Store.get

        def acquire(sem: Semaphore) -> Event:
            ev = orig_sem_acquire(sem)
            state = det._sync_state(sem)
            if ev.triggered:  # free slot: granted at call time
                det._grant(det._cur(), _Grant(ev, "sem.acquire", state))
            else:
                det._grants[id(ev)] = _Grant(ev, "sem.acquire", state)
            return ev

        def release(sem: Semaphore) -> None:
            det._release_edge(det._sync_state(sem), det._cur())
            orig_sem_release(sem)

        def put(store: Store, item: _t.Any) -> None:
            state = det._sync_state(store)
            cur = det._cur()
            _join(state.clock, cur.clock)
            det._bump(cur)
            orig_put(store, item)

        def get(store: Store) -> Event:
            ev = orig_get(store)
            state = det._sync_state(store)
            if ev.triggered:
                _join(det._cur().clock, state.clock)
            else:
                det._grants[id(ev)] = _Grant(ev, "store.get", state)
            return ev

        Semaphore.acquire = acquire  # type: ignore[method-assign]
        Semaphore.release = release  # type: ignore[method-assign]
        Store.put = put  # type: ignore[method-assign]
        Store.get = get  # type: ignore[method-assign]

        for cls in (SpinLock, TicketLock, CohortLock):
            self._saved[cls] = {"acquire": cls.acquire, "release": cls.release}
            cls.acquire = self._make_lock_acquire(cls.acquire)  # type: ignore[method-assign]
            cls.release = self._make_lock_release(cls.release)  # type: ignore[method-assign]

    def _make_lock_acquire(self, orig: _t.Callable) -> _t.Callable:
        det = self

        def acquire(lock: _t.Any, host: int) -> Process:
            proc = orig(lock, host)
            det._grants[id(proc)] = _Grant(proc, "lock.acquire", det._sync_state(lock))
            return proc

        return acquire

    def _make_lock_release(self, orig: _t.Callable) -> _t.Callable:
        det = self

        def release(lock: _t.Any, host: int) -> Process:
            det._release_edge(det._sync_state(lock), det._cur())
            return orig(lock, host)

        return release

    def _unpatch_resources(self) -> None:
        for cls, methods in self._saved.items():
            for name, fn in methods.items():
                setattr(cls, name, fn)
        self._saved = {}

    # -- shadow-state lookups ----------------------------------------------

    def _cur(self) -> _ProcInfo:
        return self._current if self._current is not None else self._root

    def _info(self, proc: Process) -> _ProcInfo:
        info = self._procs.get(id(proc))
        if info is None:  # created before install: adopt with a fresh clock
            info = self._new_info(proc, parent=None)
        return info

    def _new_info(self, proc: Process, parent: _ProcInfo | None) -> _ProcInfo:
        pid = self._next_pid
        self._next_pid += 1
        if parent is None:
            clock = {pid: 1}
        else:
            clock = dict(parent.clock)
            clock[pid] = 1
        held = list(parent.held) if parent is not None else []
        info = _ProcInfo(pid=pid, proc=proc, name=proc.name, clock=clock, held=held)
        self._procs[id(proc)] = info
        return info

    def _sync_state(self, obj: _t.Any) -> _SyncState:
        state = self._syncs.get(id(obj))
        if state is None:
            label = f"{type(obj).__name__.lower()}#{len(self._syncs) + 1}"
            state = _SyncState(obj=obj, label=label)
            self._syncs[id(obj)] = state
        return state

    def _bump(self, info: _ProcInfo) -> None:
        info.clock[info.pid] = info.clock.get(info.pid, 0) + 1

    def _grant(self, info: _ProcInfo, grant: _Grant) -> None:
        """Apply the acquire side of a sync edge to *info*."""
        state = grant.state
        _join(info.clock, state.clock)
        if grant.kind in ("sem.acquire", "lock.acquire"):
            state.holders.add(info.pid)
            info.held.append(state.label)
        if isinstance(grant.event, Process):
            child = self._procs.get(id(grant.event))
            if child is not None:
                _join(info.clock, child.clock)

    def _release_edge(self, state: _SyncState, info: _ProcInfo) -> None:
        """Apply the release side: publish *info*'s clock on the resource."""
        _join(state.clock, info.clock)
        self._bump(info)
        state.holders.discard(info.pid)
        try:
            info.held.remove(state.label)
        except ValueError:
            pass  # release by a non-acquirer (ownership handoff) is legal

    # -- Process monitor hooks (fork / join / suspend) ----------------------

    def on_create(self, proc: Process) -> None:
        parent = self._cur()
        self._new_info(proc, parent)
        self._bump(parent)  # post-fork parent steps are not ordered w/ child

    def on_resume(self, proc: Process, event: Event) -> None:
        info = self._info(proc)
        self._current = info
        grant = self._grants.pop(id(event), None)
        if grant is not None and grant.event is event:
            if event._ok:
                self._grant(info, grant)
            return
        if isinstance(event, Process):
            child = self._procs.get(id(event))
            if child is not None and event._ok:
                _join(info.clock, child.clock)
        elif isinstance(event, (AllOf, AnyOf)):
            for member in event.events:
                if (
                    isinstance(member, Process)
                    and member.processed
                    and member._ok
                ):
                    child = self._procs.get(id(member))
                    if child is not None:
                        _join(info.clock, child.clock)

    def on_suspend(self, proc: Process, target: Event) -> None:
        self._current = None
        # Relay path: the yielded event already fired, so the resume will
        # arrive via an anonymous relay — apply any pending grant now.
        if target.processed:
            grant = self._grants.pop(id(target), None)
            if grant is not None and grant.event is target and target._ok:
                self._grant(self._info(proc), grant)

    def on_finish(self, proc: Process) -> None:
        self._current = None
        info = self._procs.get(id(proc))
        if info is None:
            return
        engine = proc.engine
        entry = self._engines.get(id(engine))
        if entry is None:
            entry = self._engines[id(engine)] = (engine, {})
        _join(entry[1], info.clock)

    # -- Engine monitor hooks ----------------------------------------------

    def on_run_exit(self, engine: Engine) -> None:
        """``run()`` returned: everything it dispatched happened before the
        code now resuming at top level."""
        if self._current is None:
            entry = self._engines.get(id(engine))
            if entry is not None:
                _join(self._root.clock, entry[1])

    def on_drain(self, engine: Engine) -> None:
        if not self.deadlock:
            return
        blocked = [
            info
            for info in self._procs.values()
            if info.proc is not None
            and info.proc.engine is engine
            and info.proc.is_alive
        ]
        if not blocked:
            return
        edges: dict[int, list[tuple[int, str]]] = {}
        lines: dict[int, str] = {}
        by_pid = {info.pid: info for info in blocked}
        for info in blocked:
            for target_pid, why in self._wait_edges(info):
                edges.setdefault(info.pid, []).append((target_pid, why))
            lines[info.pid] = self._describe_wait(info)
        cycle = self._find_cycle(edges, set(by_pid))
        message = [
            f"deadlock: event heap drained with {len(blocked)} process(es)"
            " still blocked"
        ]
        if cycle:
            message.append("wait-for cycle:")
            for pid, why in cycle:
                info = by_pid.get(pid) or self._pid_info(pid)
                name = info.name if info else f"pid {pid}"
                message.append(f"  {name!r} {why}")
        else:
            message.append("blocked processes (no cycle among monitored ones):")
            for pid in sorted(lines):
                message.append(f"  {lines[pid]}")
        raise DeadlockError("\n".join(message))

    def _pid_info(self, pid: int) -> _ProcInfo | None:
        for info in self._procs.values():
            if info.pid == pid:
                return info
        return None

    def _wait_targets(self, event: Event | None) -> list[Event]:
        if event is None:
            return []
        if isinstance(event, (AllOf, AnyOf)):
            return [member for member in event.events if not member.processed]
        return [event]

    def _wait_edges(self, info: _ProcInfo) -> list[tuple[int, str]]:
        out: list[tuple[int, str]] = []
        waiting = info.proc._waiting_on if info.proc is not None else None
        for event in self._wait_targets(waiting):
            grant = self._grants.get(id(event))
            if grant is not None and grant.kind in ("sem.acquire", "lock.acquire"):
                for holder in sorted(grant.state.holders - {info.pid}):
                    held_by = self._pid_info(holder)
                    who = held_by.name if held_by is not None else f"pid {holder}"
                    out.append(
                        (holder, f"waits on {grant.state.label} (held by {who!r})")
                    )
            elif isinstance(event, Process):
                child = self._procs.get(id(event))
                if child is not None:
                    out.append((child.pid, f"waits on process {child.name!r}"))
        return out

    def _describe_wait(self, info: _ProcInfo) -> str:
        waiting = info.proc._waiting_on if info.proc is not None else None
        targets = self._wait_targets(waiting)
        if not targets:
            return f"{info.name!r} blocked (resume pending or detached)"
        parts = []
        for event in targets:
            grant = self._grants.get(id(event))
            if grant is not None:
                parts.append(grant.state.label)
            else:
                parts.append(getattr(event, "name", "") or type(event).__name__)
        return f"{info.name!r} waits on {', '.join(parts)}"

    def _find_cycle(
        self, edges: dict[int, list[tuple[int, str]]], nodes: set[int]
    ) -> list[tuple[int, str]] | None:
        """DFS for a cycle; returns [(pid, why-it-waits), ...] around it."""
        visited: set[int] = set()
        for start in sorted(nodes):
            if start in visited:
                continue
            stack: list[tuple[int, str]] = []
            on_path: dict[int, int] = {}

            def dfs(pid: int) -> list[tuple[int, str]] | None:
                visited.add(pid)
                on_path[pid] = len(stack)
                for target, why in edges.get(pid, []):
                    if target in on_path:
                        cut = on_path[target]
                        return stack[cut:] + [(pid, why)]
                    if target not in visited:
                        stack.append((pid, why))
                        found = dfs(target)
                        stack.pop()
                        if found:
                            return found
                del on_path[pid]
                return None

            found = dfs(start)
            if found:
                return found
        return None

    # -- coherence-line sync edges ------------------------------------------

    def _on_line_op(
        self, directory: CoherenceDirectory, op: str, host: int | None, line: int
    ) -> None:
        if not self.hb:
            return
        info = self._cur()
        key = (id(directory), line)
        clock = self._line_clocks.get(key)
        if clock is None:
            clock = self._line_clocks[key] = {}
            self._pools.setdefault(id(directory), (directory, len(self._pools) + 1))
        if op != "store":  # load / rmw: acquire the line's published clock
            _join(info.clock, clock)
        if op != "load":  # store / rmw: publish this process's clock
            _join(clock, info.clock)
            self._bump(info)

    # -- frame shadowing (SessionObserver seam) -----------------------------

    def on_access(
        self,
        session: LmpSession,
        buffer: "Buffer",
        offset: int,
        size: int,
        write: bool,
    ) -> None:
        if not (self.hb or self.lockset):
            return
        info = self._cur()
        pool = session.runtime.pool
        pool_entry = self._pools.get(id(pool))
        if pool_entry is None:
            pool_entry = self._pools[id(pool)] = (pool, len(self._pools) + 1)
        pool_seq = pool_entry[1]
        page_bytes = pool.geometry.page_bytes
        base = buffer.base.value + offset
        first = base // page_bytes
        last = (base + max(size, 1) - 1) // page_bytes
        self.accesses_seen += 1
        access = FrameAccess(
            pid=info.pid,
            process=info.name,
            op="write" if write else "read",
            frame=f"pool#{pool_seq}:page{first}"
            + (f"..{last}" if last != first else ""),
            buffer=buffer.name or f"buffer@{buffer.base.value:#x}",
            time=session.runtime.engine.now,
            epoch=info.clock.get(info.pid, 0),
            clock=dict(info.clock),
            locks=frozenset(info.held),
        )
        for page in range(first, last + 1):
            frame_key = (pool_seq, page)
            state = self._frames.get(frame_key)
            if state is None:
                state = self._frames[frame_key] = _FrameState()
                self.frames_tracked += 1
            frame_name = f"pool#{pool_seq}:page{page}"
            if self.hb:
                self._check_hb(state, access, info, write, frame_name)
            if self.lockset:
                self._check_lockset(state, access, info, write, frame_name)

    def _happens_before(self, earlier: FrameAccess, info: _ProcInfo) -> bool:
        """FastTrack epoch test: earlier ⊑ info's current clock?"""
        if earlier.pid == info.pid:
            return True
        return info.clock.get(earlier.pid, 0) >= earlier.epoch

    def _check_hb(
        self,
        state: _FrameState,
        access: FrameAccess,
        info: _ProcInfo,
        write: bool,
        frame: str,
    ) -> None:
        if write:
            if state.writer is not None and not self._happens_before(
                state.writer, info
            ):
                self._report_race("write-write", frame, state.writer, access)
            for reader in state.readers.values():
                if reader.pid != info.pid and not self._happens_before(reader, info):
                    self._report_race("read-write", frame, reader, access)
            state.writer = access
            state.readers = {}
        else:
            if state.writer is not None and not self._happens_before(
                state.writer, info
            ):
                self._report_race("write-read", frame, state.writer, access)
            state.readers[info.pid] = access

    def _report_race(
        self, kind: str, frame: str, earlier: FrameAccess, later: FrameAccess
    ) -> None:
        key = (kind, frame, earlier.pid, later.pid)
        if key in self._race_keys or len(self.races) >= MAX_REPORTS:
            return
        self._race_keys.add(key)
        self.races.append(
            RaceReport(kind=kind, frame=frame, earlier=earlier, later=later)
        )

    def _check_lockset(
        self,
        state: _FrameState,
        access: FrameAccess,
        info: _ProcInfo,
        write: bool,
        frame: str,
    ) -> None:
        held = access.locks
        state.lockset = held if state.lockset is None else state.lockset & held
        state.procs.add(info.pid)
        state.wrote = state.wrote or write
        if len(state.history) < _HISTORY:
            state.history.append((access.process, access.op, held))
        if (
            state.wrote
            and len(state.procs) >= 2
            and not state.lockset
            and not state.lockset_reported
            and len(self.lockset_reports) < MAX_REPORTS
        ):
            state.lockset_reported = True
            self.lockset_reports.append(
                LocksetReport(
                    frame=frame,
                    buffer=access.buffer,
                    access=access,
                    history=tuple(state.history),
                )
            )
