"""Runtime sanitizers: ASan-style checks for the simulated memory system.

We have no silicon to validate the models against, so the sanitizers
enforce the invariants real hardware would:

* :class:`AllocSanitizer` shadows every :class:`FreeListAllocator` /
  :class:`BuddyAllocator` instance and detects double-free, use-after-
  free, overlapping grants, and leaked blocks at scenario teardown.
* :class:`CoherenceSanitizer` re-checks MESI-style invariants on the
  coherence directory after every protocol transition: at most one
  Modified owner, no Shared copies coexisting with Modified, and the
  home's snoop filter consistent with the sharer sets.

Both install process-wide (the test suite enables them for every test
via ``tests/conftest.py``) and uninstall cleanly.
"""

from __future__ import annotations

import bisect
import contextlib
import dataclasses
import typing as _t

from repro.errors import (
    CoherenceInvariantError,
    DoubleFreeError,
    MemoryLeakError,
    OverlapError,
    SanitizerError,
    UseAfterFreeError,
)
from repro.core.regions import RegionManager
from repro.mem.allocator import Allocation, BuddyAllocator, FreeListAllocator

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.coherence.protocol import CoherenceDirectory


# -- allocation sanitizer -----------------------------------------------------


@dataclasses.dataclass
class _AllocState:
    """Shadow bookkeeping for one allocator instance."""

    live: dict[int, int] = dataclasses.field(default_factory=dict)  # offset -> size
    freed: dict[int, int] = dataclasses.field(default_factory=dict)  # offset -> size
    offsets: list[int] = dataclasses.field(default_factory=list)  # sorted live offsets

    def overlapping_live(self, offset: int, size: int) -> tuple[int, int] | None:
        """A live block intersecting [offset, offset+size), if any."""
        i = bisect.bisect_right(self.offsets, offset)
        if i > 0:
            prev = self.offsets[i - 1]
            if prev + self.live[prev] > offset:
                return prev, self.live[prev]
        if i < len(self.offsets) and self.offsets[i] < offset + size:
            nxt = self.offsets[i]
            return nxt, self.live[nxt]
        return None

    def record_alloc(self, offset: int, size: int) -> None:
        self.live[offset] = size
        bisect.insort(self.offsets, offset)
        # reallocation legitimizes previously freed ranges it covers
        for freed_off in [
            o for o, s in self.freed.items() if o < offset + size and o + s > offset
        ]:
            del self.freed[freed_off]

    def record_free(self, offset: int) -> None:
        size = self.live.pop(offset)
        self.offsets.pop(bisect.bisect_left(self.offsets, offset))
        self.freed[offset] = size


_AnyAllocator = _t.Union[FreeListAllocator, BuddyAllocator, RegionManager]


class AllocSanitizer:
    """Wraps the allocator classes with shadow range tracking.

    ``install()`` patches ``allocate``/``free`` on both allocator
    classes; every instance (old or new) is tracked from its next call
    on.  Misuse raises precise :class:`~repro.errors.SanitizerError`
    subclasses that still inherit the plain allocator errors, so code
    guarding ``AllocationError`` keeps working.

    :class:`~repro.core.regions.RegionManager` frame pools (the logical
    pool's real backing store) are shadowed too, one page-sized block
    per frame — which is how the cluster control plane proves that
    revoking a tenant's leases reclaims every frame it held.
    """

    _active: _t.ClassVar["AllocSanitizer | None"] = None

    #: attribute the shadow state lives under on each allocator instance
    #: (NOT keyed by id(): ids are reused once an allocator is collected)
    _STATE_ATTR = "_repro_check_shadow"

    def __init__(self) -> None:
        self._originals: dict[type, tuple[tuple[str, _t.Callable], ...]] = {}
        self._region_originals: tuple[_t.Callable, _t.Callable] | None = None

    # -- install / uninstall -------------------------------------------------

    def install(self) -> None:
        from repro.mem.arena.bestfit import BestFitAllocator
        from repro.mem.arena.slab import SlabAllocator
        from repro.mem.arena.tenant import TenantArenaAllocator

        if AllocSanitizer._active is not None:
            raise SanitizerError("an AllocSanitizer is already installed")
        for cls in (FreeListAllocator, BuddyAllocator, BestFitAllocator, SlabAllocator):
            self._originals[cls] = (("allocate", cls.allocate), ("free", cls.free))
            cls.allocate = self._wrap_allocate(cls.allocate)  # type: ignore[method-assign]
            cls.free = self._wrap_free(cls.free)  # type: ignore[method-assign]
        # the tenant arena's plain allocate() delegates to allocate_for()
        # — wrapping both would double-record every grant, so only the
        # funnel is patched
        self._originals[TenantArenaAllocator] = (
            ("allocate_for", TenantArenaAllocator.allocate_for),
            ("free", TenantArenaAllocator.free),
        )
        TenantArenaAllocator.allocate_for = self._wrap_allocate(  # type: ignore[method-assign]
            TenantArenaAllocator.allocate_for
        )
        TenantArenaAllocator.free = self._wrap_free(  # type: ignore[method-assign]
            TenantArenaAllocator.free
        )
        self._region_originals = (
            RegionManager.allocate_frames,
            RegionManager.free_frames,
        )
        RegionManager.allocate_frames = self._wrap_allocate_frames(  # type: ignore[method-assign]
            RegionManager.allocate_frames
        )
        RegionManager.free_frames = self._wrap_free_frames(  # type: ignore[method-assign]
            RegionManager.free_frames
        )
        AllocSanitizer._active = self

    def uninstall(self) -> None:
        if AllocSanitizer._active is not self:
            raise SanitizerError("this AllocSanitizer is not installed")
        for cls, entries in self._originals.items():
            for attr, original in entries:
                setattr(cls, attr, original)
        self._originals.clear()
        assert self._region_originals is not None
        RegionManager.allocate_frames, RegionManager.free_frames = (  # type: ignore[method-assign]
            self._region_originals
        )
        self._region_originals = None
        AllocSanitizer._active = None

    @contextlib.contextmanager
    def installed(self) -> _t.Iterator["AllocSanitizer"]:
        self.install()
        try:
            yield self
        finally:
            self.uninstall()

    def _state(self, allocator: _AnyAllocator) -> _AllocState:
        state = allocator.__dict__.get(self._STATE_ATTR)
        if state is None:
            state = _AllocState()
            allocator.__dict__[self._STATE_ATTR] = state
        return state

    # -- wrappers ------------------------------------------------------------

    def _wrap_allocate(self, inner: _t.Callable) -> _t.Callable:
        sanitizer = self

        def allocate(alloc_self: _AnyAllocator, *args: _t.Any, **kwargs: _t.Any) -> Allocation:
            # *args absorbs both allocate(size) and allocate_for(tenant, size)
            granted: Allocation = inner(alloc_self, *args, **kwargs)
            state = sanitizer._state(alloc_self)
            clash = state.overlapping_live(granted.offset, granted.size)
            if clash is not None:
                raise OverlapError(
                    f"allocator granted [{granted.offset}, {granted.end}) overlapping "
                    f"live block [{clash[0]}, {clash[0] + clash[1]})"
                )
            state.record_alloc(granted.offset, granted.size)
            return granted

        return allocate

    def _wrap_free(self, inner: _t.Callable) -> _t.Callable:
        sanitizer = self

        def free(alloc_self: _AnyAllocator, allocation: Allocation | int) -> None:
            offset = (
                allocation.offset if isinstance(allocation, Allocation) else allocation
            )
            state = sanitizer._state(alloc_self)
            if offset in state.freed and offset not in state.live:
                raise DoubleFreeError(
                    f"double free of offset {offset} "
                    f"(block of {state.freed[offset]} bytes already freed)"
                )
            inner(alloc_self, allocation)
            if offset in state.live:
                state.record_free(offset)

        return free

    def _wrap_allocate_frames(self, inner: _t.Callable) -> _t.Callable:
        sanitizer = self

        def allocate_frames(
            region_self: RegionManager, count: int, highest: bool = False
        ) -> list[int]:
            frames: list[int] = inner(region_self, count, highest=highest)
            state = sanitizer._state(region_self)
            page = region_self.page_bytes
            for frame in frames:
                clash = state.overlapping_live(frame, page)
                if clash is not None:
                    raise OverlapError(
                        f"server {region_self.server.server_id}: frame {frame} "
                        f"granted while live as [{clash[0]}, {clash[0] + clash[1]})"
                    )
                state.record_alloc(frame, page)
            return frames

        return allocate_frames

    def _wrap_free_frames(self, inner: _t.Callable) -> _t.Callable:
        sanitizer = self

        def free_frames(region_self: RegionManager, frames: _t.Iterable[int]) -> None:
            materialized = list(frames)
            # the region manager's own not-in-use check runs first, so
            # plain-API misuse keeps raising AllocationError as before
            inner(region_self, materialized)
            state = sanitizer._state(region_self)
            for frame in materialized:
                if frame in state.live:
                    state.record_free(frame)

        return free_frames

    # -- explicit checks -----------------------------------------------------

    def check_access(self, allocator: _AnyAllocator, offset: int, size: int = 1) -> None:
        """Assert [offset, offset+size) lies inside a live allocation."""
        state = self._state(allocator)
        i = bisect.bisect_right(state.offsets, offset)
        if i > 0:
            base = state.offsets[i - 1]
            if offset + size <= base + state.live[base]:
                return
        for freed_off, freed_size in state.freed.items():
            if offset < freed_off + freed_size and offset + size > freed_off:
                raise UseAfterFreeError(
                    f"access [{offset}, {offset + size}) touches freed block "
                    f"[{freed_off}, {freed_off + freed_size})"
                )
        raise SanitizerError(
            f"access [{offset}, {offset + size}) outside any tracked allocation"
        )

    def live_blocks(self, allocator: _AnyAllocator) -> dict[int, int]:
        """offset -> size of every block the sanitizer believes is live."""
        return dict(self._state(allocator).live)

    def assert_no_leaks(self, allocator: _AnyAllocator) -> None:
        """Scenario-teardown check: every tracked block was freed."""
        live = self._state(allocator).live
        if live:
            worst = sorted(live.items(), key=lambda kv: -kv[1])[:5]
            blocks = ", ".join(f"[{o}, {o + s})" for o, s in worst)
            raise MemoryLeakError(
                f"{len(live)} block(s) leaked at teardown "
                f"({sum(live.values())} bytes; largest: {blocks})"
            )

    @classmethod
    def active(cls) -> "AllocSanitizer | None":
        return cls._active


# -- coherence sanitizer ------------------------------------------------------


class CoherenceSanitizer:
    """Re-checks directory invariants after every coherence transition.

    Installs onto :class:`~repro.core.coherence.protocol.CoherenceDirectory`
    (class attribute hook); the protocol calls back after each load /
    store / atomic with the line it transitioned, and the sanitizer
    verifies that line in O(hosts).
    """

    _active: _t.ClassVar["CoherenceSanitizer | None"] = None

    def __init__(self) -> None:
        self.transitions_checked = 0

    def install(self) -> None:
        from repro.core.coherence.protocol import CoherenceDirectory

        if CoherenceSanitizer._active is not None:
            raise SanitizerError("a CoherenceSanitizer is already installed")
        CoherenceDirectory._sanitizer = self
        CoherenceSanitizer._active = self

    def uninstall(self) -> None:
        from repro.core.coherence.protocol import CoherenceDirectory

        if CoherenceSanitizer._active is not self:
            raise SanitizerError("this CoherenceSanitizer is not installed")
        CoherenceDirectory._sanitizer = None
        CoherenceSanitizer._active = None

    @contextlib.contextmanager
    def installed(self) -> _t.Iterator["CoherenceSanitizer"]:
        self.install()
        try:
            yield self
        finally:
            self.uninstall()

    # -- invariants ----------------------------------------------------------

    def verify_line(self, directory: "CoherenceDirectory", line: int) -> None:
        """MESI invariants for one line; raises CoherenceInvariantError."""
        self.transitions_checked += 1
        entry = directory._entries.get(line)
        holders = sorted(
            h for h in directory.server_ids if line in directory._caches[h]
        )
        if entry is None:
            if holders:
                raise CoherenceInvariantError(
                    f"line {line}: hosts {holders} cache it but no directory entry exists"
                )
            return
        owner = entry.owner
        if owner is not None:
            # SWMR: the Modified owner is the only holder
            others = [h for h in holders if h != owner]
            if others:
                raise CoherenceInvariantError(
                    f"line {line}: Modified owner {owner} coexists with "
                    f"cached copies on {others}"
                )
            if line not in directory._caches.get(owner, set()):
                raise CoherenceInvariantError(
                    f"line {line}: owner {owner} does not cache its own line"
                )
        for host in holders:
            if host != owner and host not in entry.sharers:
                raise CoherenceInvariantError(
                    f"line {line}: host {host} caches the line but is not in "
                    f"the sharer set {sorted(entry.sharers)}"
                )
        # inclusivity: every cached copy is tracked by the home's filter
        home = directory.home_of(line)
        tracked = directory.snoop_filters[home].sharers(line)
        missing = [h for h in holders if h not in tracked]
        if missing:
            raise CoherenceInvariantError(
                f"line {line}: hosts {missing} cache it but the home's snoop "
                f"filter tracks only {sorted(tracked)} (inclusivity violated)"
            )

    def verify_all(self, directory: "CoherenceDirectory") -> None:
        """Full-directory sweep (scenario teardown / tests)."""
        for line in sorted(directory._entries):
            self.verify_line(directory, line)
        # no stale filter entries: everything a home's filter tracks is
        # really cached by those hosts
        for home, snoop_filter in sorted(directory.snoop_filters.items()):
            for line in snoop_filter.tracked_lines():
                for host in sorted(snoop_filter.sharers(line)):
                    if line not in directory._caches.get(host, set()):
                        raise CoherenceInvariantError(
                            f"line {line}: home {home}'s snoop filter tracks "
                            f"host {host}, which does not cache it"
                        )

    @classmethod
    def active(cls) -> "CoherenceSanitizer | None":
        return cls._active
