"""``repro.check`` — determinism linter, runtime sanitizers, CI gate.

Three layers substitute for the silicon validation real CXL simulators
lean on:

* the ``LMP`` AST linter (:mod:`repro.check.lint`, rules in
  :mod:`repro.check.rules`) flags simulation-correctness hazards
  statically,
* the runtime sanitizers (:mod:`repro.check.sanitizers`) enforce
  allocator and coherence invariants while scenarios run,
* the race/lockset/deadlock detectors (:mod:`repro.check.races`)
  shadow shared-region accesses with vector clocks and watch the
  event heap for wait-for cycles,
* the determinism harness (:mod:`repro.check.determinism`) reruns
  scenarios and diffs their event streams byte for byte,
* the explicit-state model checker (:mod:`repro.check.model`)
  exhaustively explores abstract specs of the pool's protocols
  (coherence, leases, admission, recovery) and replays every
  counterexample deterministically through the real DES.

Entry point: ``python -m repro check [--fix] [--determinism ...]
[--races ...] [--model ... [--scope smoke|deep] [--mutants]]
[--format text|json|github] [path...]``.
"""

from repro.check.determinism import SCENARIOS, DeterminismHarness, DeterminismReport
from repro.check.lint import FileReport, apply_fixes, fix_file, lint_file, lint_paths, lint_source
from repro.check.model import (
    ExplorationResult,
    Explorer,
    ModelSpec,
    ModelViolation,
    ReplayResult,
    build_spec,
    checked_replay,
)
from repro.check.races import FrameAccess, LocksetReport, RaceReport, RaceSanitizer
from repro.check.rules import ALL_RULES, LintContext, Rule, Violation
from repro.check.runner import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL,
    EXIT_MODEL,
    EXIT_USAGE,
    run_check,
    run_model_checks,
)
from repro.check.sanitizers import AllocSanitizer, CoherenceSanitizer

__all__ = [
    "ALL_RULES",
    "AllocSanitizer",
    "CoherenceSanitizer",
    "DeterminismHarness",
    "DeterminismReport",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_INTERNAL",
    "EXIT_MODEL",
    "EXIT_USAGE",
    "ExplorationResult",
    "Explorer",
    "ModelSpec",
    "ModelViolation",
    "ReplayResult",
    "FileReport",
    "FrameAccess",
    "LintContext",
    "LocksetReport",
    "RaceReport",
    "RaceSanitizer",
    "Rule",
    "SCENARIOS",
    "Violation",
    "apply_fixes",
    "build_spec",
    "checked_replay",
    "fix_file",
    "lint_file",
    "lint_paths",
    "lint_source",
    "run_check",
    "run_model_checks",
]
