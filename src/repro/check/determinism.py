"""Seed-determinism harness: run a scenario twice, diff its event streams.

The evaluation's ratios are only trustworthy if reruns reproduce
bit-identical traces (DESIGN.md).  The harness registers a global event
sink on :class:`~repro.sim.engine.Engine` — so it sees every engine a
scenario builds internally — renders each dispatched event through
:class:`~repro.sim.trace.Tracer` formatting, and compares the two
streams byte for byte, reporting the first divergent event.
"""

from __future__ import annotations

import contextlib
import dataclasses
import typing as _t

from repro.errors import DeterminismError
from repro.sim.engine import Engine
from repro.sim.trace import Tracer

TRACE_KIND = "engine.step"


def _scenario_figure2() -> _t.Any:
    from repro.experiments.figures import run_figure

    return run_figure("figure2", links=("link0",), repetitions=2)


def _scenario_incast() -> _t.Any:
    from repro.experiments import incast

    return incast.run()


def _scenario_migration() -> _t.Any:
    from repro.experiments import migration

    return migration.run()


def _scenario_cluster() -> _t.Any:
    from repro.experiments import cluster

    return cluster.run(
        policies=("first-fit", "capacity-balanced"),
        tenant_count=4,
        ops_per_tenant=10,
        sweep_tenant_counts=(4, 8),
        sweep_shared_fractions=(0.5,),
    )


def _scenario_obs() -> _t.Any:
    """A cluster run with :mod:`repro.obs` fully installed.

    Beyond the harness's engine-stream diff, the scenario itself runs
    the workload twice with fresh recorders and insists the exported
    Chrome trace JSON is byte-identical — span ids, parenting, and
    every attribute must be functions of the seed alone.
    """
    from repro.cluster.driver import ClusterDriver, WorkloadMix
    from repro.cluster.tenants import PriorityClass
    from repro.experiments.cluster import _manager, _specs
    from repro.obs import Observability, chrome_trace
    from repro.units import kib, mib

    def one_run() -> str:
        obs = Observability()
        with obs.activated():
            manager = _manager(
                "first-fit",
                server_count=2,
                server_dram_bytes=mib(8),
                shared_fraction=0.75,
                seed=0,
            )
            mix = WorkloadMix(
                alloc_bytes=kib(192), access_bytes=kib(4), lock_fraction=0.25
            )
            driver = ClusterDriver(manager, mix=mix)
            specs = _specs(
                4, 2, quota_bytes=mib(8), priority=PriorityClass.STANDARD
            )
            driver.run(specs, ops_per_tenant=8)
        return chrome_trace(obs)

    first = one_run()
    second = one_run()
    if first != second:
        raise DeterminismError(
            "obs: exported Chrome traces differ between two same-seed runs"
        )
    return first


def _scenario_scale() -> _t.Any:
    """A reduced open-loop serving run (elastic vs static), twice.

    The engine-stream diff covers the 10k-tenant machinery end to end
    (open-loop traffic, slotted driver, autoscaler reflexes); rendering
    the report twice additionally pins every derived number — reject
    rates, Jain index, migration bytes — to the seed."""
    from repro.experiments import scale

    def one_run() -> str:
        return scale.run(
            tenants=300,
            racks=2,
            servers_per_rack=2,
            duration_us=300.0,
            base_rate_ops_us=0.8,
        ).render()

    first = one_run()
    second = one_run()
    if first != second:
        raise DeterminismError(
            "scale: rendered reports differ between two same-seed runs"
        )
    return first


def _scenario_alloc() -> _t.Any:
    """A reduced allocator-gauntlet run, compared at two levels.

    The harness's engine-stream diff covers the DES compaction replays;
    on top of that the scenario renders the full experiment twice and
    insists the report text — every fragmentation score, every
    compaction byte count — is byte-identical."""
    from repro.experiments import alloc

    first = alloc.run(ops=2000, ablation_ops=4000).render()
    second = alloc.run(ops=2000, ablation_ops=4000).render()
    if first != second:
        raise DeterminismError(
            "alloc: rendered gauntlet reports differ between two same-seed runs"
        )
    return first


#: scenario name -> zero-argument callable; reduced sizes keep reruns cheap
SCENARIOS: dict[str, _t.Callable[[], _t.Any]] = {
    "figure2": _scenario_figure2,
    "incast": _scenario_incast,
    "migration": _scenario_migration,
    "cluster": _scenario_cluster,
    "obs": _scenario_obs,
    "alloc": _scenario_alloc,
    "scale": _scenario_scale,
}


@dataclasses.dataclass(frozen=True)
class DeterminismReport:
    """Outcome of one twice-run scenario comparison."""

    scenario: str
    events_first: int
    events_second: int
    first_divergence: int | None  # index of the first differing event
    line_first: str | None
    line_second: str | None

    @property
    def identical(self) -> bool:
        return (
            self.first_divergence is None and self.events_first == self.events_second
        )

    def render(self) -> str:
        if self.identical:
            return (
                f"{self.scenario}: deterministic "
                f"({self.events_first} events, byte-identical)"
            )
        lines = [
            f"{self.scenario}: NONDETERMINISTIC "
            f"({self.events_first} vs {self.events_second} events)"
        ]
        if self.first_divergence is not None:
            lines.append(f"  first divergence at event #{self.first_divergence}:")
            lines.append(f"    run 1: {self.line_first or '<stream ended>'}")
            lines.append(f"    run 2: {self.line_second or '<stream ended>'}")
        return "\n".join(lines)

    def raise_on_divergence(self) -> None:
        if not self.identical:
            raise DeterminismError(self.render())


class DeterminismHarness:
    """Runs scenarios twice and diffs the ``sim.trace`` event streams."""

    def __init__(
        self, scenarios: _t.Mapping[str, _t.Callable[[], _t.Any]] | None = None
    ) -> None:
        self.scenarios = dict(SCENARIOS if scenarios is None else scenarios)

    @contextlib.contextmanager
    def _capture(self) -> _t.Iterator[Tracer]:
        """Route every engine's event dispatch into a fresh tracer."""
        tracer = Tracer(enabled=(TRACE_KIND,))

        def sink(_engine: Engine, when: float, seq: int, event: _t.Any) -> None:
            tracer.emit(
                when,
                "engine",
                TRACE_KIND,
                seq=seq,
                event=type(event).__name__,
                name=getattr(event, "name", ""),
            )

        Engine.add_global_event_sink(sink)
        try:
            yield tracer
        finally:
            Engine.remove_global_event_sink(sink)

    def capture(self, scenario: _t.Callable[[], _t.Any]) -> list[str]:
        """One run's event stream, one formatted line per dispatch."""
        with self._capture() as tracer:
            scenario()
        return [record.format() for record in tracer.records]

    def run(self, name: str) -> DeterminismReport:
        """Run scenario *name* twice; compare the streams."""
        try:
            scenario = self.scenarios[name]
        except KeyError:
            raise DeterminismError(
                f"unknown determinism scenario {name!r}; "
                f"known: {', '.join(sorted(self.scenarios))}"
            ) from None
        first = self.capture(scenario)
        second = self.capture(scenario)
        divergence: int | None = None
        line_first: str | None = None
        line_second: str | None = None
        for i, (a, b) in enumerate(zip(first, second)):
            if a != b:
                divergence, line_first, line_second = i, a, b
                break
        if divergence is None and len(first) != len(second):
            divergence = min(len(first), len(second))
            line_first = first[divergence] if divergence < len(first) else None
            line_second = second[divergence] if divergence < len(second) else None
        return DeterminismReport(
            scenario=name,
            events_first=len(first),
            events_second=len(second),
            first_divergence=divergence,
            line_first=line_first,
            line_second=line_second,
        )

    def run_all(self) -> list[DeterminismReport]:
        return [self.run(name) for name in sorted(self.scenarios)]
