"""Orchestrates ``python -m repro check``.

Subcommands of the reproducibility gate: lint (``LMP`` rules, optional
``--fix``), seed determinism (``--determinism``), the dynamic race /
lockset / deadlock detectors (``--races``, which replays the
determinism scenarios under :class:`~repro.check.races.RaceSanitizer`),
and the explicit-state model checker (``--model``, which exhaustively
explores the protocol specs in :mod:`repro.check.model` and replays any
counterexample through the real DES; ``--mutants`` additionally demands
the checker kill every seeded protocol bug).

Exit codes (stable, asserted by tests and documented in ``--help``):

* ``0`` — clean: no findings of any kind
* ``1`` — findings: lint violations, parse errors, nondeterministic
  scenarios, races, lockset violations, or deadlocks
* ``2`` — usage error: unknown path, scenario, rule, spec, scope, or
  format, or a flow rule (LMP011–LMP015) selected without ``--flow``
* ``3`` — internal error: a scenario or the checker itself crashed
* ``4`` — model-checking failure: a protocol spec has a counterexample,
  or a seeded mutant survived
* ``5`` — flow-analysis failure: a flow rule (LMP011–LMP015) found a
  violation, or a seeded flow mutant survived (the runner exits with
  the maximum applicable code)
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
import traceback
import typing as _t

from repro.check.determinism import SCENARIOS, DeterminismHarness, DeterminismReport
from repro.check.lint import FileReport, fix_file, iter_python_files, lint_paths
from repro.check.races import RaceSanitizer
from repro.check.rules import ALL_RULES, Rule
from repro.errors import DeadlockError, DeterminismError

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_INTERNAL = 3
EXIT_MODEL = 4
EXIT_FLOW = 5

FORMATS = ("text", "json", "github")


def default_paths() -> list[pathlib.Path]:
    """The package's own source tree, found relative to this file."""
    return [pathlib.Path(__file__).resolve().parent.parent]


def _selected_ids(select: _t.Sequence[str] | None) -> set[str] | None:
    """Validate ``--select`` ids against the combined lint + flow
    registries; the empty set means "everything", None means invalid."""
    from repro.check.flow.rules import FLOW_RULES

    if select is None:
        return set()
    wanted = {s.strip().upper() for item in select for s in item.split(",") if s.strip()}
    known = {rule.id for rule in ALL_RULES} | {rule.id for rule in FLOW_RULES}
    unknown = sorted(wanted - known)
    if unknown:
        print(
            f"repro check: unknown rule id(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})",
            file=sys.stderr,
        )
        return None
    return wanted


def select_rules(select: _t.Sequence[str] | None) -> tuple[Rule, ...] | None:
    """Resolve ``--select`` ids to lint rules; None on an unknown id."""
    wanted = _selected_ids(select)
    if wanted is None:
        return None
    if not wanted:
        return ALL_RULES
    return tuple(rule for rule in ALL_RULES if rule.id in wanted)


def _scenario_names(requested: _t.Sequence[str]) -> list[str] | None:
    names = list(requested) or sorted(SCENARIOS)
    if "all" in names:
        names = sorted(SCENARIOS)
    unknown = sorted(set(names) - set(SCENARIOS))
    if unknown:
        print(
            f"repro check: unknown scenario(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(SCENARIOS))})",
            file=sys.stderr,
        )
        return None
    return names


def _model_spec_names(requested: _t.Sequence[str]) -> list[str] | None:
    from repro.check.model import SPECS

    names = list(requested) or sorted(SPECS)
    if "all" in names:
        names = sorted(SPECS)
    unknown = sorted(set(names) - set(SPECS))
    if unknown:
        print(
            f"repro check: unknown model spec(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(SPECS))})",
            file=sys.stderr,
        )
        return None
    return names


def run_model_checks(
    names: _t.Sequence[str],
    scope: str = "smoke",
    depth: int | None = None,
    max_states: int = 200_000,
) -> list[dict[str, _t.Any]]:
    """Explore each named spec; replay the first counterexample.

    Returns one record per spec: ``{spec, result, replay, elapsed_s}``
    where ``result`` is an
    :class:`~repro.check.model.ExplorationResult` and ``replay`` is a
    :class:`~repro.check.model.ReplayResult` (or None when the spec
    held).  Counterexample replays include a liveness lasso's cycle, so
    the deterministic repro exhibits the bug, not just its prefix.
    """
    from repro.check.model import Explorer, build_spec, checked_replay

    records: list[dict[str, _t.Any]] = []
    for name in names:
        spec = build_spec(name, scope)
        started = time.perf_counter()
        result = Explorer(spec, max_depth=depth, max_states=max_states).run()
        elapsed = time.perf_counter() - started
        replay = None
        if result.violations:
            violation = result.violations[0]
            if violation.trace or violation.cycle:
                replay = checked_replay(spec, violation.trace + violation.cycle)
        records.append(
            {"spec": name, "result": result, "replay": replay, "elapsed_s": elapsed}
        )
    return records


def run_races(names: _t.Sequence[str]) -> list[dict[str, _t.Any]]:
    """Run each scenario under a fresh :class:`RaceSanitizer`.

    Returns one record per scenario:
    ``{scenario, races, locksets, deadlock, error, accesses, frames}``.
    Never raises — crashes are captured in the record's ``error``.
    """
    results: list[dict[str, _t.Any]] = []
    for name in names:
        detector = RaceSanitizer()
        deadlock: str | None = None
        error: str | None = None
        try:
            with detector.installed():
                SCENARIOS[name]()
        except DeadlockError as exc:
            deadlock = str(exc)
        except Exception:
            error = traceback.format_exc()
        results.append(
            {
                "scenario": name,
                "races": [r.to_json() for r in detector.races],
                "locksets": [r.to_json() for r in detector.lockset_reports],
                "deadlock": deadlock,
                "error": error,
                "accesses": detector.accesses_seen,
                "frames": detector.frames_tracked,
                "_detector": detector,
            }
        )
    return results


def _render_race_result(result: dict[str, _t.Any], stream: _t.TextIO) -> None:
    detector: RaceSanitizer = result["_detector"]
    name = result["scenario"]
    if result["error"]:
        print(f"{name}: INTERNAL ERROR\n{result['error']}", file=stream)
        return
    if result["deadlock"]:
        print(f"{name}: DEADLOCK\n{result['deadlock']}", file=stream)
        return
    if detector.clean:
        print(
            f"{name}: race-free ({result['accesses']} access(es) over "
            f"{result['frames']} frame(s), no deadlock)",
            file=stream,
        )
        return
    print(
        f"{name}: {len(detector.races)} race(s), "
        f"{len(detector.lockset_reports)} lockset violation(s)",
        file=stream,
    )
    for report in detector.races:
        print(report.render(), file=stream)
    for lockset in detector.lockset_reports:
        print(lockset.render(), file=stream)


def _github_escape(message: str) -> str:
    return message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _emit_lint(
    reports: _t.Sequence[FileReport], fmt: str, stream: _t.TextIO
) -> None:
    for report in reports:
        if report.parse_error:
            if fmt == "github":
                print(
                    f"::error file={report.path}::parse error: "
                    f"{_github_escape(report.parse_error)}",
                    file=stream,
                )
            else:
                print(f"{report.path}: parse error: {report.parse_error}", file=stream)
        for violation in report.violations:
            if fmt == "github":
                print(
                    f"::error file={violation.path},line={violation.line},"
                    f"col={violation.col + 1},title={violation.rule_id}::"
                    f"{_github_escape(violation.message)}",
                    file=stream,
                )
            else:
                print(violation.format(), file=stream)


def run_check(
    paths: _t.Sequence[pathlib.Path] | None = None,
    fix: bool = False,
    determinism: _t.Sequence[str] | None = None,
    races: _t.Sequence[str] | None = None,
    model: _t.Sequence[str] | None = None,
    scope: str = "smoke",
    depth: int | None = None,
    mutants: bool = False,
    flow: bool = False,
    fmt: str = "text",
    select: _t.Sequence[str] | None = None,
    stream: _t.TextIO | None = None,
) -> int:
    """Lint *paths* (default: the installed ``repro`` package), then
    optionally run the flow-sensitive dataflow rules (``--flow``),
    verify seed determinism, run the race/deadlock detectors
    over the named scenarios, and model-check the named protocol specs
    (with *mutants*, also self-test the checker against seeded bugs).
    Returns the exit code documented in the module docstring
    (0/1/2/3/4/5)."""
    if stream is None:
        stream = sys.stdout
    if fmt not in FORMATS:
        print(
            f"repro check: unknown format {fmt!r} (known: {', '.join(FORMATS)})",
            file=sys.stderr,
        )
        return EXIT_USAGE
    targets = list(paths) if paths else default_paths()
    for target in targets:
        if not target.exists():
            print(f"repro check: no such path: {target}", file=sys.stderr)
            return EXIT_USAGE
    selected_ids = _selected_ids(select)
    if selected_ids is None:
        return EXIT_USAGE
    if selected_ids and not flow:
        from repro.check.flow.rules import FLOW_RULES

        flow_selected = selected_ids & {rule.id for rule in FLOW_RULES}
        if flow_selected:
            # without the guard a flow-only --select would run zero
            # rules yet still report "clean" with exit 0
            noun = "is a flow rule" if len(flow_selected) == 1 else "are flow rules"
            print(
                f"repro check: {', '.join(sorted(flow_selected))} {noun}; "
                "pass --flow to run it",
                file=sys.stderr,
            )
            return EXIT_USAGE
    rules = tuple(r for r in ALL_RULES if not selected_ids or r.id in selected_ids)
    determinism_names: list[str] | None = None
    if determinism is not None:
        determinism_names = _scenario_names(determinism)
        if determinism_names is None:
            return EXIT_USAGE
    race_names: list[str] | None = None
    if races is not None:
        race_names = _scenario_names(races)
        if race_names is None:
            return EXIT_USAGE
    model_names: list[str] | None = None
    if model is not None:
        from repro.check.model import SCOPES

        model_names = _model_spec_names(model)
        if model_names is None:
            return EXIT_USAGE
        if scope not in SCOPES:
            print(
                f"repro check: unknown scope {scope!r} "
                f"(known: {', '.join(SCOPES)})",
                file=sys.stderr,
            )
            return EXIT_USAGE
        if depth is not None and depth < 1:
            print(f"repro check: depth must be >= 1, got {depth}", file=sys.stderr)
            return EXIT_USAGE
    if mutants and model is None and not flow:
        print("repro check: --mutants requires --model or --flow", file=sys.stderr)
        return EXIT_USAGE

    try:
        exit_code = EXIT_CLEAN
        fixes_applied: int | None = None
        if fix:
            fixes_applied = 0
            for path in iter_python_files(targets):
                fixes_applied += fix_file(path, rules)
            if fmt != "json":
                print(f"applied {fixes_applied} autofix(es)", file=stream)

        reports = lint_paths(targets, rules)
        violation_count = sum(len(r.violations) for r in reports)
        parse_errors = [r for r in reports if r.parse_error]
        if violation_count or parse_errors:
            exit_code = EXIT_FINDINGS
        file_count = len(list(iter_python_files(targets)))
        if fmt != "json":
            _emit_lint(reports, fmt, stream)
            if violation_count:
                print(
                    f"repro check: {violation_count} violation(s) in "
                    f"{len(reports)} of {file_count} file(s)",
                    file=stream,
                )
            else:
                print(f"repro check: {file_count} file(s) clean", file=stream)

        flow_reports: list[FileReport] = []
        flow_mutant_reports: list[_t.Any] = []
        flow_elapsed = 0.0
        if flow:
            from repro.check.flow.analyze import analyze_paths
            from repro.check.flow.rules import FLOW_RULES

            flow_rules = tuple(
                r for r in FLOW_RULES if not selected_ids or r.id in selected_ids
            )
            flow_started = time.perf_counter()
            flow_reports = analyze_paths(targets, flow_rules)
            flow_elapsed = time.perf_counter() - flow_started
            flow_violations = sum(len(r.violations) for r in flow_reports)
            flow_parse_errors = [r for r in flow_reports if r.parse_error]
            if flow_violations or flow_parse_errors:
                exit_code = max(exit_code, EXIT_FLOW)
            if fmt != "json":
                _emit_lint(flow_reports, fmt, stream)
                if flow_violations:
                    print(
                        f"repro check --flow: {flow_violations} finding(s) in "
                        f"{len([r for r in flow_reports if r.violations])} of "
                        f"{file_count} file(s)  [{flow_elapsed:.2f}s]",
                        file=stream,
                    )
                else:
                    print(
                        f"repro check --flow: {file_count} file(s) clean  "
                        f"[{flow_elapsed:.2f}s]",
                        file=stream,
                    )
            if mutants:
                from repro.check.flow.mutants import run_flow_mutants

                flow_mutant_reports = list(run_flow_mutants())
                flow_missed = [r for r in flow_mutant_reports if not r.caught]
                if fmt != "json":
                    for report in flow_mutant_reports:
                        print(report.render(), file=stream)
                    print(
                        f"flow mutation harness: "
                        f"{len(flow_mutant_reports) - len(flow_missed)}"
                        f"/{len(flow_mutant_reports)} seeded defect(s) caught",
                        file=stream,
                    )
                if fmt == "github":
                    for report in flow_missed:
                        print(
                            f"::error title=flow mutant survived ({report.name})::"
                            f"{_github_escape(report.description)}",
                            file=stream,
                        )
                if flow_missed:
                    exit_code = max(exit_code, EXIT_FLOW)

        determinism_reports: list[DeterminismReport] = []
        if determinism_names is not None:
            harness = DeterminismHarness()
            for name in determinism_names:
                try:
                    report = harness.run(name)
                except DeterminismError as exc:
                    # harness-level failure (not a mere divergence)
                    print(str(exc), file=sys.stderr)
                    return EXIT_INTERNAL
                determinism_reports.append(report)
                if fmt != "json":
                    print(report.render(), file=stream)
                if not report.identical:
                    exit_code = max(exit_code, EXIT_FINDINGS)

        race_results: list[dict[str, _t.Any]] = []
        if race_names is not None:
            race_results = run_races(race_names)
            for result in race_results:
                if fmt != "json":
                    _render_race_result(result, stream)
                if result["error"]:
                    exit_code = max(exit_code, EXIT_INTERNAL)
                elif (
                    result["races"] or result["locksets"] or result["deadlock"]
                ):
                    exit_code = max(exit_code, EXIT_FINDINGS)
            if fmt == "github":
                for result in race_results:
                    for race in result["races"]:
                        print(
                            f"::error title=data race ({result['scenario']})::"
                            f"{_github_escape(race['kind'] + ' on ' + race['frame'])}",
                            file=stream,
                        )
                    if result["deadlock"]:
                        print(
                            f"::error title=deadlock ({result['scenario']})::"
                            f"{_github_escape(result['deadlock'])}",
                            file=stream,
                        )

        model_records: list[dict[str, _t.Any]] = []
        mutant_reports: list[_t.Any] = []
        if model_names is not None:
            model_records = run_model_checks(model_names, scope=scope, depth=depth)
            for record in model_records:
                result = record["result"]
                if fmt != "json":
                    print(f"{result.render()}  [{record['elapsed_s']:.2f}s]", file=stream)
                    for violation in result.violations:
                        print(violation.render(), file=stream)
                    if record["replay"] is not None:
                        print(record["replay"].render(), file=stream)
                if result.violations:
                    exit_code = max(exit_code, EXIT_MODEL)
            if fmt == "github":
                for record in model_records:
                    for violation in record["result"].violations:
                        print(
                            f"::error title=model {violation.kind} "
                            f"({record['spec']}: {violation.property})::"
                            f"{_github_escape(violation.render())}",
                            file=stream,
                        )
            if mutants:
                from repro.check.model.mutants import run_mutants as _run_mutants

                mutant_reports = _run_mutants(scope)
                missed = [r for r in mutant_reports if not r.caught]
                if fmt != "json":
                    for report in mutant_reports:
                        print(report.render(), file=stream)
                    print(
                        f"mutation harness: {len(mutant_reports) - len(missed)}"
                        f"/{len(mutant_reports)} seeded bug(s) caught",
                        file=stream,
                    )
                if fmt == "github":
                    for report in missed:
                        print(
                            f"::error title=mutant survived ({report.name})::"
                            f"{_github_escape(report.description)}",
                            file=stream,
                        )
                if missed:
                    exit_code = max(exit_code, EXIT_MODEL)

        if fmt == "json":
            payload = {
                "version": 1,
                "exit_code": exit_code,
                "files_checked": file_count,
                "fixes_applied": fixes_applied,
                "violations": [
                    {
                        "rule": v.rule_id,
                        "path": str(v.path),
                        "line": v.line,
                        "col": v.col + 1,
                        "message": v.message,
                        "autofixable": v.autofixable,
                    }
                    for r in reports
                    for v in r.violations
                ],
                "parse_errors": [
                    {"path": str(r.path), "error": r.parse_error}
                    for r in parse_errors
                ],
                "determinism": [
                    {
                        "scenario": r.scenario,
                        "identical": r.identical,
                        "events_first": r.events_first,
                        "events_second": r.events_second,
                        "first_divergence": r.first_divergence,
                    }
                    for r in determinism_reports
                ],
                "races": [
                    {k: v for k, v in result.items() if not k.startswith("_")}
                    for result in race_results
                ],
                "model": [
                    {
                        "spec": record["spec"],
                        "scope": scope,
                        "states": record["result"].states,
                        "transitions": record["result"].transitions,
                        "depth": record["result"].depth,
                        "complete": record["result"].complete,
                        "por": record["result"].por_used,
                        "liveness_checked": record["result"].liveness_checked,
                        "elapsed_s": record["elapsed_s"],
                        "violations": [
                            v.to_json() for v in record["result"].violations
                        ],
                        "replay": (
                            record["replay"].to_json()
                            if record["replay"] is not None
                            else None
                        ),
                    }
                    for record in model_records
                ],
                "mutants": [report.to_json() for report in mutant_reports],
                "flow": {
                    "enabled": flow,
                    "elapsed_s": flow_elapsed,
                    "violations": [
                        {
                            "rule": v.rule_id,
                            "path": str(v.path),
                            "line": v.line,
                            "col": v.col + 1,
                            "message": v.message,
                        }
                        for r in flow_reports
                        for v in r.violations
                    ],
                    "parse_errors": [
                        {"path": str(r.path), "error": r.parse_error}
                        for r in flow_reports
                        if r.parse_error
                    ],
                },
                "flow_mutants": [report.to_json() for report in flow_mutant_reports],
            }
            json.dump(payload, stream, indent=2)
            stream.write("\n")
        return exit_code
    except Exception:
        traceback.print_exc(file=sys.stderr)
        return EXIT_INTERNAL
