"""Orchestrates ``python -m repro check [--fix] [--determinism ...] [path...]``.

Exit codes: 0 clean, 1 findings (lint violations or divergent
scenarios), 2 usage errors.
"""

from __future__ import annotations

import pathlib
import sys
import typing as _t

from repro.check.determinism import SCENARIOS, DeterminismHarness
from repro.check.lint import fix_file, iter_python_files, lint_paths
from repro.check.rules import ALL_RULES
from repro.errors import DeterminismError


def default_paths() -> list[pathlib.Path]:
    """The package's own source tree, found relative to this file."""
    return [pathlib.Path(__file__).resolve().parent.parent]


def run_check(
    paths: _t.Sequence[pathlib.Path] | None = None,
    fix: bool = False,
    determinism: _t.Sequence[str] | None = None,
    stream: _t.TextIO = sys.stdout,
) -> int:
    """Lint *paths* (default: the installed ``repro`` package) and
    optionally verify seed determinism for the named scenarios."""
    targets = list(paths) if paths else default_paths()
    for target in targets:
        if not target.exists():
            print(f"repro check: no such path: {target}", file=sys.stderr)
            return 2

    exit_code = 0
    if fix:
        fixed_total = 0
        for path in iter_python_files(targets):
            fixed_total += fix_file(path)
        print(f"applied {fixed_total} autofix(es)", file=stream)

    reports = lint_paths(targets, ALL_RULES)
    violation_count = 0
    for report in reports:
        if report.parse_error:
            print(f"{report.path}: parse error: {report.parse_error}", file=stream)
            exit_code = 1
        for violation in report.violations:
            print(violation.format(), file=stream)
            violation_count += 1
    file_count = len(list(iter_python_files(targets)))
    if violation_count:
        exit_code = 1
        print(
            f"repro check: {violation_count} violation(s) in "
            f"{len(reports)} of {file_count} file(s)",
            file=stream,
        )
    else:
        print(f"repro check: {file_count} file(s) clean", file=stream)

    if determinism is not None:
        names = list(determinism) or sorted(SCENARIOS)
        if "all" in names:
            names = sorted(SCENARIOS)
        harness = DeterminismHarness()
        for name in names:
            try:
                report_d = harness.run(name)
            except DeterminismError as exc:
                print(str(exc), file=stream)
                return 2
            print(report_d.render(), file=stream)
            if not report_d.identical:
                exit_code = 1
    return exit_code
