"""The ``LMP`` lint rules: simulation-correctness hazards as AST checks.

The whole evaluation rests on the DES being deterministic — ratios are
only trustworthy if reruns reproduce bit-identical traces.  Full-system
CXL simulators validate themselves against silicon; we have no
hardware, so these rules (plus the runtime sanitizers) are the
substitute.  Each rule is a small class with an id, a docstring that
doubles as its rationale, and an ``autofixable`` flag consumed by
``python -m repro check --fix``.

Rules are scoped by *subsystem*: the first package component after
``repro`` (``sim``, ``core``, ``fabric``, ``hw``, …).  A rule with
``subsystems = None`` applies everywhere.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import typing as _t


@dataclasses.dataclass(frozen=True)
class Violation:
    """One lint finding, pointing at a source location."""

    rule_id: str
    path: pathlib.Path
    line: int
    col: int
    message: str
    autofixable: bool = False
    #: for autofixable violations: the (lineno, col, end_lineno, end_col)
    #: span of the expression to rewrite, 1-based lines / 0-based cols
    fix_span: tuple[int, int, int, int] | None = None

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} {self.message}"


@dataclasses.dataclass(frozen=True)
class LintContext:
    """Where a module sits in the tree, for subsystem-scoped rules."""

    path: pathlib.Path
    subsystem: str | None  # first package component after "repro", if any

    @classmethod
    def for_path(cls, path: pathlib.Path) -> "LintContext":
        parts = path.parts
        subsystem: str | None = None
        for i, part in enumerate(parts):
            if part == "repro" and i + 2 < len(parts):
                # repro/<subsystem>/.../module.py
                subsystem = parts[i + 1]
                break
        return cls(path=path, subsystem=subsystem)


class Rule:
    """Base class: subclasses define ``id``, ``title`` and ``check``."""

    id: _t.ClassVar[str] = "LMP000"
    title: _t.ClassVar[str] = ""
    autofixable: _t.ClassVar[bool] = False
    #: subsystems the rule applies to, or None for all modules
    subsystems: _t.ClassVar[frozenset[str] | None] = None

    def applies(self, ctx: LintContext) -> bool:
        return self.subsystems is None or ctx.subsystem in self.subsystems

    def check(self, tree: ast.AST, ctx: LintContext) -> list[Violation]:
        raise NotImplementedError

    def violation(
        self,
        ctx: LintContext,
        node: ast.AST,
        message: str,
        fix_span: tuple[int, int, int, int] | None = None,
    ) -> Violation:
        return Violation(
            rule_id=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            autofixable=self.autofixable and fix_span is not None,
            fix_span=fix_span,
        )


#: subsystems whose code runs inside the simulation and must not touch
#: the host machine's clock or global RNG
SIM_SUBSYSTEMS = frozenset({"sim", "core", "fabric", "hw", "mem"})

_WALL_CLOCK_FUNCS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


def _dotted(node: ast.AST) -> str | None:
    """Render an attribute chain like ``datetime.datetime.now`` or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class WallClockRule(Rule):
    """LMP001 — wall-clock reads inside simulated components.

    ``time.time()`` / ``datetime.now()`` inside ``sim``/``core``/
    ``fabric``/``hw``/``mem`` leaks host time into the model: results
    change run to run and the trace diff harness can never pass.
    Simulated components must read ``engine.now`` only.
    """

    id = "LMP001"
    title = "wall-clock call in simulated component"
    subsystems = SIM_SUBSYSTEMS

    def check(self, tree: ast.AST, ctx: LintContext) -> list[Violation]:
        out: list[Violation] = []
        from_time: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    from_time.update(
                        alias.asname or alias.name
                        for alias in node.names
                        if alias.name in _WALL_CLOCK_FUNCS
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in from_time:
                out.append(self.violation(ctx, node, f"wall-clock call {func.id}()"))
                continue
            dotted = _dotted(func)
            if dotted is None:
                continue
            head, _, tail = dotted.rpartition(".")
            if head.split(".")[-1] == "time" and tail in _WALL_CLOCK_FUNCS:
                out.append(self.violation(ctx, node, f"wall-clock call {dotted}()"))
            elif "datetime" in head.split(".") and tail in _DATETIME_FUNCS:
                out.append(self.violation(ctx, node, f"wall-clock call {dotted}()"))
        return out


_RANDOM_OK = frozenset({"Random", "SystemRandom"})


class GlobalRandomRule(Rule):
    """LMP002 — module-level ``random`` calls instead of ``sim.rng``.

    ``random.randint(...)`` draws from the interpreter-global generator:
    any other component (or pytest plugin) touching it perturbs every
    sequence after it.  Draw from the engine's named streams
    (``engine.rng.stream("...")``) or take an explicit
    ``random.Random`` argument.  Constructing ``random.Random(seed)``
    is fine — that *is* an isolated stream.
    """

    id = "LMP002"
    title = "global random module call"
    subsystems = None  # everywhere: experiments must be reproducible too

    def check(self, tree: ast.AST, ctx: LintContext) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr not in _RANDOM_OK
            ):
                out.append(
                    self.violation(
                        ctx,
                        node,
                        f"random.{func.attr}() uses the process-global generator; "
                        "draw from an injected random.Random / sim.rng stream",
                    )
                )
        return out


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "set"
    return False


def _is_dict_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "dict"
    return False


def _collect_typed_names(
    scope: ast.AST, predicate: _t.Callable[[ast.AST], bool]
) -> set[str]:
    """Names always bound by simple assignment to values matching
    *predicate* in *scope* (conservative: one other binding disqualifies)."""
    matches: dict[str, bool] = {}
    for node in ast.walk(scope):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                hit = predicate(value)
                matches[target.id] = matches.get(target.id, hit) and hit
    return {name for name, flag in matches.items() if flag}


def _collect_set_names(scope: ast.AST) -> set[str]:
    """Names assigned a set expression by simple assignment in *scope*.

    A name loses set-ness if any assignment binds it to something else
    (conservative: we only track names that are *always* sets here).
    """
    return _collect_typed_names(scope, _is_set_expr)


def _collect_dict_names(scope: ast.AST) -> set[str]:
    """Names always assigned dict expressions in *scope*."""
    return _collect_typed_names(scope, _is_dict_expr)


class SetIterationRule(Rule):
    """LMP003 — ``for`` over a bare set or dict view in dispatch paths.

    Set iteration order depends on element hashes, and for strings that
    order changes per process (``PYTHONHASHSEED``).  Dict views iterate
    in insertion order, which is deterministic only if the *insertion
    sequence* was — a dict populated from set iteration, ``**kwargs`` or
    hash-ordered sources silently inherits the nondeterminism.  When the
    loop body touches simulation state — sends invalidations, pops
    events — runs stop being reproducible.  Iterate ``sorted(...)`` (or
    keep an explicitly ordered ``list``) instead.  Autofix wraps the
    iterable — bare set, bare locally-built dict, ``.keys()`` or
    ``.values()`` view — in ``sorted(...)``.
    """

    id = "LMP003"
    title = "iteration over unordered set"
    autofixable = True
    subsystems = frozenset({"sim", "core", "fabric"})

    def _span(self, node: ast.expr) -> tuple[int, int, int, int] | None:
        if node.end_lineno is None or node.end_col_offset is None:
            return None
        return (node.lineno, node.col_offset, node.end_lineno, node.end_col_offset)

    def _dict_view(self, it: ast.expr, dict_names: set[str]) -> str | None:
        """Describe *it* if it iterates a tracked dict's view, else None."""
        if isinstance(it, ast.Name) and it.id in dict_names:
            return f"dict {it.id!r}"
        if (
            isinstance(it, ast.Call)
            and not it.args
            and not it.keywords
            and isinstance(it.func, ast.Attribute)
            and it.func.attr in ("keys", "values")
            and isinstance(it.func.value, ast.Name)
            and it.func.value.id in dict_names
        ):
            return f"{it.func.value.id}.{it.func.attr}()"
        return None

    def check(self, tree: ast.AST, ctx: LintContext) -> list[Violation]:
        out: list[Violation] = []
        scopes: list[ast.AST] = [tree]
        scopes.extend(
            n
            for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        seen: set[tuple[int, int]] = set()
        for scope in scopes:
            set_names = _collect_set_names(scope)
            dict_names = _collect_dict_names(scope)
            for node in ast.walk(scope):
                if not isinstance(node, (ast.For, ast.AsyncFor)):
                    continue
                it = node.iter
                key = (it.lineno, it.col_offset)
                if key in seen:
                    continue
                if _is_set_expr(it) or (
                    isinstance(it, ast.Name) and it.id in set_names
                ):
                    seen.add(key)
                    out.append(
                        self.violation(
                            ctx,
                            node,
                            "for-loop over a set has hash-dependent order; "
                            "iterate sorted(...) or an ordered structure",
                            fix_span=self._span(it),
                        )
                    )
                    continue
                view = self._dict_view(it, dict_names)
                if view is not None:
                    seen.add(key)
                    out.append(
                        self.violation(
                            ctx,
                            node,
                            f"for-loop over {view} iterates in insertion "
                            "order, which is only as deterministic as the "
                            "insertion sequence; iterate sorted(...)",
                            fix_span=self._span(it),
                        )
                    )
        return out


_TIME_NAMES = frozenset({"now", "_now", "deadline", "sim_time", "elapsed", "when"})


class FloatTimeEqualityRule(Rule):
    """LMP004 — ``==`` / ``!=`` on simulated-time floats.

    Simulation time is a float accumulated by addition; two paths to
    "the same" instant differ in the last ulp, so equality silently
    becomes machine-specific.  Compare with ``<=`` ordering or an
    explicit tolerance (``math.isclose``).
    """

    id = "LMP004"
    title = "float equality on simulated time"
    subsystems = frozenset({"sim", "core", "fabric", "hw"})

    def _is_time_operand(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr in _TIME_NAMES
        if isinstance(node, ast.Name):
            return node.id in _TIME_NAMES
        return False

    def check(self, tree: ast.AST, ctx: LintContext) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_time_operand(left) or self._is_time_operand(right):
                    # integer literals are exact: `t == 0` is fine
                    other = right if self._is_time_operand(left) else left
                    if isinstance(other, ast.Constant) and isinstance(other.value, int):
                        continue
                    out.append(
                        self.violation(
                            ctx,
                            node,
                            "float == on simulated time; use ordering or math.isclose",
                        )
                    )
        return out


class MutableDefaultRule(Rule):
    """LMP005 — mutable default arguments.

    A ``def f(xs=[])`` default is created once and shared by every
    call; state leaks across scenarios and across test runs, which is
    both a correctness bug and a reproducibility hazard.  Default to
    ``None`` and construct inside the function.
    """

    id = "LMP005"
    title = "mutable default argument"
    subsystems = None

    def check(self, tree: ast.AST, ctx: LintContext) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                bad = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set", "bytearray")
                )
                if bad:
                    out.append(
                        self.violation(
                            ctx,
                            default,
                            "mutable default argument is shared across calls; "
                            "default to None",
                        )
                    )
        return out


class SetPopRule(Rule):
    """LMP006 — ``set.pop()`` / ``next(iter(set))`` picks an arbitrary element.

    ``some_set.pop()`` removes a hash-order-dependent element; in an
    event-dispatch or coherence path that choice changes which host gets
    invalidated first.  Use ``min``/``max`` or sort for a deterministic
    pick.
    """

    id = "LMP006"
    title = "arbitrary element choice from a set"
    subsystems = frozenset({"sim", "core", "fabric"})

    def check(self, tree: ast.AST, ctx: LintContext) -> list[Violation]:
        out: list[Violation] = []
        scopes: list[ast.AST] = [tree]
        scopes.extend(
            n
            for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        seen: set[tuple[int, int]] = set()
        for scope in scopes:
            set_names = _collect_set_names(scope)
            for node in ast.walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                key = (node.lineno, node.col_offset)
                if key in seen:
                    continue
                func = node.func
                # <tracked set>.pop() with no arguments
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "pop"
                    and not node.args
                    and not node.keywords
                    and isinstance(func.value, ast.Name)
                    and func.value.id in set_names
                ):
                    seen.add(key)
                    out.append(
                        self.violation(
                            ctx, node, "set.pop() removes an arbitrary element"
                        )
                    )
                # next(iter(<set expr>))
                elif (
                    isinstance(func, ast.Name)
                    and func.id == "next"
                    and node.args
                    and isinstance(node.args[0], ast.Call)
                    and isinstance(node.args[0].func, ast.Name)
                    and node.args[0].func.id == "iter"
                    and node.args[0].args
                    and (
                        _is_set_expr(node.args[0].args[0])
                        or (
                            isinstance(node.args[0].args[0], ast.Name)
                            and node.args[0].args[0].id in set_names
                        )
                    )
                ):
                    seen.add(key)
                    out.append(
                        self.violation(
                            ctx, node, "next(iter(set)) picks an arbitrary element"
                        )
                    )
        return out


#: call attributes that enter a synchronization scope (locks, semaphores,
#: barriers, leases — a lease *is* exclusive ownership of its buffer)
_SYNC_ENTRY_ATTRS = frozenset({"acquire", "wait"})
_WRITE_ATTRS = frozenset({"write", "write_v"})


def _pos(node: ast.AST) -> tuple[int, int]:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


def _scopes(tree: ast.AST) -> list[ast.AST]:
    scopes: list[ast.AST] = [tree]
    scopes.extend(
        n
        for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return scopes


def _direct_walk(scope: ast.AST) -> _t.Iterator[ast.AST]:
    """Walk *scope* without descending into nested function definitions."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class SharedWriteOutsideSyncRule(Rule):
    """LMP007 — shared-region write with no sync scope in tenant code.

    ``cluster`` and ``workloads`` code runs many concurrent processes
    against one pool; a ``.write()`` / ``.write_v()`` in a function that
    never enters a synchronization scope (no ``.acquire()`` or
    ``.wait()`` on a lock, semaphore, barrier, or lease manager before
    it) is exactly the shape the runtime race detector flags
    dynamically — this rule catches it statically, before the
    interleaving ever runs.  If the write is protected by construction
    (single writer, disjoint offsets reserved synchronously), suppress
    with ``# noqa: LMP007`` and say why in a comment.
    """

    id = "LMP007"
    title = "shared write outside a sync scope"
    subsystems = frozenset({"cluster", "workloads", "scale"})

    def check(self, tree: ast.AST, ctx: LintContext) -> list[Violation]:
        out: list[Violation] = []
        for scope in _scopes(tree):
            writes: list[ast.Call] = []
            sync_entries: list[tuple[int, int]] = []
            for node in _direct_walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr in _SYNC_ENTRY_ATTRS:
                    sync_entries.append(_pos(node))
                elif func.attr in _WRITE_ATTRS:
                    writes.append(node)
            for call in writes:
                assert isinstance(call.func, ast.Attribute)
                if any(entry <= _pos(call) for entry in sync_entries):
                    continue  # a sync scope was entered before this write
                out.append(
                    self.violation(
                        ctx,
                        call,
                        f".{call.func.attr}() on shared memory with no "
                        "preceding sync-scope entry (.acquire()/.wait()) in "
                        "this function; guard it or # noqa: LMP007 with a "
                        "reason",
                    )
                )
        return out


class HoldAcrossYieldRule(Rule):
    """LMP008 — ``yield`` while holding a resource in a ``try`` without
    ``finally``.

    A yielded event can deliver an exception (``interrupt()``, a failed
    transfer, a crashed server).  If the resource's ``.release()`` sits
    in the ``try`` body rather than a ``finally``, the exception path
    skips it: the semaphore slot or lock line leaks, every later waiter
    blocks forever, and the deadlock detector fires far from the cause.
    Move the release into a ``finally`` (the coherence directory's
    per-line lock pattern), or ``# noqa: LMP008`` with the reason the
    exception arm provably releases.
    """

    id = "LMP008"
    title = "yield while holding an unreleased resource"
    subsystems = frozenset({"sim", "core", "fabric", "cluster", "workloads"})

    def check(self, tree: ast.AST, ctx: LintContext) -> list[Violation]:
        out: list[Violation] = []
        for scope in _scopes(tree):
            if isinstance(scope, ast.Module):
                continue
            acquires_in_scope = [
                _pos(n)
                for n in _direct_walk(scope)
                if isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr == "acquire"
            ]
            for node in _direct_walk(scope):
                if not isinstance(node, ast.Try) or node.finalbody:
                    continue
                body_nodes = [
                    n for stmt in node.body for n in ast.walk(stmt)
                ]
                releases = [
                    _pos(n)
                    for n in body_nodes
                    if isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)
                    and n.func.attr == "release"
                ]
                if not releases:
                    continue
                yields = [
                    _pos(n) for n in body_nodes if isinstance(n, (ast.Yield, ast.YieldFrom))
                ]
                held_from = [p for p in acquires_in_scope if p < max(releases)]
                risky = [
                    y
                    for y in yields
                    if y < max(releases) and (not held_from or y > min(held_from))
                ]
                if risky:
                    out.append(
                        self.violation(
                            ctx,
                            node,
                            "yield inside try while a resource is held and "
                            "released in the try body, not a finally: an "
                            "exception at the yield leaks the resource",
                        )
                    )
        return out


#: modules allowed to print: CLI surfaces whose *job* is stdout
_PRINT_EXEMPT_SUFFIXES = ("cli.py", "check/runner.py", "analysis/report.py")


class BarePrintRule(Rule):
    """LMP009 — bare ``print()`` in library code.

    A ``print()`` inside the simulator or its models writes straight to
    the host's stdout: it cannot be captured by the metrics pipeline,
    breaks quiet runs under pytest/CI, and tempts ad-hoc debugging
    output into committed code.  Route numbers through ``repro.obs``
    (spans/metrics), return values for the caller to render, or emit
    through ``sim.trace``.  The CLI (``cli.py``), the check runner, and
    the report renderers are exempt — stdout is their interface.
    Suppress intentional prints with ``# noqa: LMP009``.
    """

    id = "LMP009"
    title = "bare print() in library code"
    subsystems = None

    def applies(self, ctx: LintContext) -> bool:
        if "repro" not in ctx.path.parts:
            return False
        posix = ctx.path.as_posix()
        return not any(posix.endswith(suffix) for suffix in _PRINT_EXEMPT_SUFFIXES)

    def check(self, tree: ast.AST, ctx: LintContext) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                out.append(
                    self.violation(
                        ctx,
                        node,
                        "bare print() in library code; route through repro.obs "
                        "metrics/spans or return the value (# noqa: LMP009 if "
                        "intentional)",
                    )
                )
        return out


#: ambient entropy sources: dotted call names whose result differs on
#: every invocation regardless of any seed
_ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.randbits",
        "secrets.choice",
    }
)

#: modules allowed to read the host clock: CLI surfaces that report
#: wall-clock timings as part of their human-facing output
_CLOCK_EXEMPT_SUFFIXES = ("cli.py", "check/runner.py")


class AmbientNondeterminismRule(Rule):
    """LMP010 — wall clock or ambient randomness in library code.

    LMP001 keeps host time out of the *simulated* subsystems; this rule
    covers the rest of the library.  A ``time.time()`` in the control
    plane, a ``uuid.uuid4()`` naming a lease, or an ``os.urandom()``
    seeding a workload makes two runs of the same scenario differ even
    though the DES itself is deterministic — the determinism harness
    then diffs noise, and cached results stop being comparable.  Take
    timestamps from ``engine.now``, ids from counters, and randomness
    from an injected ``random.Random`` / ``sim.rng`` stream.  The CLI
    and the check runner are exempt (reporting wall-clock timings is
    their interface); suppress intentional reads with
    ``# noqa: LMP010``.
    """

    id = "LMP010"
    title = "wall clock or ambient randomness in library code"
    subsystems = None

    def applies(self, ctx: LintContext) -> bool:
        if "repro" not in ctx.path.parts:
            return False
        posix = ctx.path.as_posix()
        return not any(posix.endswith(suffix) for suffix in _CLOCK_EXEMPT_SUFFIXES)

    def check(self, tree: ast.AST, ctx: LintContext) -> list[Violation]:
        # LMP001 already flags wall-clock reads in the sim subsystems;
        # here the clock check covers everything else, and the entropy
        # check covers the whole library (LMP001 has no entropy arm)
        check_clock = ctx.subsystem not in SIM_SUBSYSTEMS
        out: list[Violation] = []
        from_imports: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "time",
                "os",
                "uuid",
                "secrets",
            ):
                for alias in node.names:
                    from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            dotted = from_imports.get(dotted, dotted)
            head, _, tail = dotted.rpartition(".")
            if check_clock and (
                (head.split(".")[-1] == "time" and tail in _WALL_CLOCK_FUNCS)
                or ("datetime" in head.split(".") and tail in _DATETIME_FUNCS)
            ):
                out.append(
                    self.violation(
                        ctx,
                        node,
                        f"wall-clock call {dotted}() in library code; use "
                        "engine.now (# noqa: LMP010 if intentional)",
                    )
                )
            elif dotted in _ENTROPY_CALLS:
                out.append(
                    self.violation(
                        ctx,
                        node,
                        f"ambient entropy {dotted}() defeats seeded "
                        "reproducibility; use a counter or an injected "
                        "random.Random (# noqa: LMP010 if intentional)",
                    )
                )
        return out


#: every rule, in id order — the linter's registry
ALL_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    GlobalRandomRule(),
    SetIterationRule(),
    FloatTimeEqualityRule(),
    MutableDefaultRule(),
    SetPopRule(),
    SharedWriteOutsideSyncRule(),
    HoldAcrossYieldRule(),
    BarePrintRule(),
    AmbientNondeterminismRule(),
)
