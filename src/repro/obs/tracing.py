"""Causal spans over the discrete-event simulation.

A :class:`Span` is one timed region of simulated work — a process
lifetime, a session access, a coherence transaction, a tenant request —
with a ``span_id``, a ``parent_id``, sim-time start/end, and free-form
attributes.  Spans form a tree: one :class:`~repro.cluster.driver`
tenant request contains the session access it issued, which contains
the ``lmp.read`` pool process, the ``read:A<-B`` transport hop, and (for
locked ops) the coherence transactions behind the lock.

The machinery mirrors the zero-cost seam style of ``repro.check``: every
instrumented class carries a ``_obs`` class attribute that defaults to
``None``; the hot path pays one class-attribute load plus an ``is
None`` test, and nothing else, until :meth:`Observability.install` fills
the seams.  Span identifiers come from a plain counter (never ``id()``
or wall time), so two same-seed runs emit byte-identical traces — the
property the ``obs`` determinism scenario locks in.

Causality across interleaved processes works through per-process scope
stacks: each :class:`~repro.sim.process.Process` owns a stack of open
spans (stored in its ``_obs_scope`` slot).  The recorder's *active*
stack switches on every resume/suspend, so a span opened inside a
process stays its children's parent across yields, and a process
spawned while another runs becomes that process's child.
"""

from __future__ import annotations

import contextlib
import typing as _t

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine
    from repro.sim.events import Event
    from repro.sim.process import Process


class Span:
    """One timed region of simulated work in the causal tree."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "component",
        "engine_index",
        "start_ns",
        "end_ns",
        "attrs",
        "_stack",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        component: str,
        engine_index: int,
        start_ns: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.component = component
        self.engine_index = engine_index
        self.start_ns = start_ns
        self.end_ns: float | None = None
        self.attrs: dict[str, _t.Any] = {}
        #: the scope stack this span is currently open on, if any
        self._stack: list["Span"] | None = None

    @property
    def duration_ns(self) -> float:
        """Span duration; 0.0 while the span is still open."""
        if self.end_ns is None:
            return 0.0
        return self.end_ns - self.start_ns

    def to_dict(self) -> dict[str, _t.Any]:
        """JSON-ready rendering (the ``spans.json`` dump format)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "component": self.component,
            "engine": self.engine_index,
            "start_ns": self.start_ns,
            "end_ns": self.start_ns if self.end_ns is None else self.end_ns,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.span_id}, parent={self.parent_id}, "
            f"{self.component}:{self.name!r}, [{self.start_ns}, {self.end_ns}))"
        )


class SpanRecorder:
    """Creates, parents, and closes spans deterministically.

    Span ids are drawn from a monotonically increasing counter starting
    at 1; engines are numbered in first-seen order.  Both are functions
    of the simulation's own (deterministic) execution order, never of
    object identity or host time.
    """

    def __init__(self) -> None:
        self._next_id = 1
        self.spans: list[Span] = []
        #: strong refs, first-seen order — the index is the trace's "pid"
        self._engines: list[_t.Any] = []
        #: scope used when no simulation process is being resumed
        self._base: list[Span] = []
        self._active: list[Span] = self._base
        #: called as fn(span) whenever a span closes (metrics federation)
        self.finish_hooks: list[_t.Callable[[Span], None]] = []

    # -- engines -------------------------------------------------------------

    def engine_index(self, engine: _t.Any) -> int:
        """Stable index of *engine*, assigned in first-seen order."""
        for i, seen in enumerate(self._engines):
            if seen is engine:
                return i
        self._engines.append(engine)
        return len(self._engines) - 1

    @property
    def engines(self) -> list[_t.Any]:
        return list(self._engines)

    # -- span lifecycle ------------------------------------------------------

    def start(self, name: str, component: str, engine: _t.Any) -> Span:
        """Create a span parented to the top of the active scope."""
        parent = self._active[-1].span_id if self._active else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent,
            name=name,
            component=component,
            engine_index=self.engine_index(engine),
            start_ns=engine.now,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def open(self, name: str, component: str, engine: _t.Any) -> Span:
        """Start a span and push it on the active scope, so spans and
        processes created while it is open become its children."""
        span = self.start(name, component, engine)
        span._stack = self._active
        self._active.append(span)
        return span

    def finish(self, span: Span, now: float) -> None:
        """Close *span* at sim time *now* (idempotent)."""
        if span.end_ns is not None:
            return
        span.end_ns = now
        stack = span._stack
        if stack is not None:
            with contextlib.suppress(ValueError):
                stack.remove(span)
            span._stack = None
        for hook in self.finish_hooks:
            hook(span)

    # -- annotations on whatever span is currently running -------------------

    def annotate(self, **attrs: _t.Any) -> None:
        """Merge *attrs* into the currently-running span, if any."""
        if self._active:
            self._active[-1].attrs.update(attrs)

    def add(self, key: str, delta: float) -> None:
        """Accumulate a numeric attribute on the currently-running span."""
        if self._active:
            attrs = self._active[-1].attrs
            attrs[key] = attrs.get(key, 0.0) + delta

    def route_time(self, remote: bool, latency_ns: float, transfer_ns: float) -> None:
        """Charge one fabric hop to the latency-breakdown categories:
        a remote hop is link latency plus fabric transfer time; a local
        hop is all DRAM service."""
        if remote:
            self.add("cat_link_ns", latency_ns)
            self.add("cat_fabric_ns", transfer_ns)
        else:
            self.add("cat_dram_ns", latency_ns + transfer_ns)

    # -- process seam (mirrors repro.check's Process._monitor protocol) ------

    def on_create(self, proc: "Process") -> None:
        span = self.start(proc.name, "process", proc.engine)
        proc._obs_scope = [span]

    def on_resume(self, proc: "Process", event: "Event") -> None:
        scope = proc._obs_scope
        if scope is None:
            # the process predates install(); adopt it now
            span = self.start(proc.name, "process", proc.engine)
            scope = proc._obs_scope = [span]
        self._active = scope

    def on_suspend(self, proc: "Process", target: "Event") -> None:
        self._active = self._base

    def on_finish(self, proc: "Process") -> None:
        scope = proc._obs_scope
        if scope is not None:
            now = proc.engine.now
            for span in reversed(list(scope)):
                self.finish(span, now)
            proc._obs_scope = None
        self._active = self._base


#: (module path, attribute) for every class-level seam install() fills
_SEAMS: tuple[tuple[str, str, str], ...] = (
    ("repro.sim.process", "Process", "_obs"),
    ("repro.core.api", "LmpSession", "_obs"),
    ("repro.core.coherence.protocol", "CoherenceDirectory", "_obs"),
    ("repro.fabric.transport", "MemoryTransport", "_obs"),
    ("repro.hw.cpu", "Core", "_obs"),
    ("repro.core.migration", "LocalityBalancer", "_obs"),
    ("repro.mem.arena.gauntlet", "Gauntlet", "_obs"),
    ("repro.cluster.manager", "PoolManager", "_obs"),
    ("repro.cluster.driver", "ClusterDriver", "_obs"),
)

#: module-level seam for the §4.1 microbenchmark driver (a function, not
#: a class, so its hook is a module global rather than a ClassVar)
_MODULE_SEAMS: tuple[tuple[str, str], ...] = (("repro.workloads.vector_sum", "_obs"),)


class Observability:
    """The one-stop facade: spans + metrics + all seam semantics.

    ``install()`` fills every ``_obs`` seam with this object and hooks a
    global engine event sink for metrics; ``uninstall()`` restores every
    seam to ``None``.  All seam-facing methods live here so the
    instrumented modules only ever call one object.
    """

    def __init__(self, window_ns: float = 1_000_000.0) -> None:
        if window_ns <= 0:
            raise ObservabilityError(f"window_ns must be positive, got {window_ns}")
        self.recorder = SpanRecorder()
        self.metrics = MetricsRegistry()
        self.window_ns = window_ns
        self._installed = False
        #: engine index -> next sim time at which to snapshot the metrics
        self._next_snapshot: dict[int, float] = {}
        #: id() of already-federated stat sources (dedup only; the ids
        #: never reach any output, so hash order cannot leak)
        self._federated: set[int] = set()
        self.recorder.finish_hooks.append(self._on_span_finish)

    # -- install / uninstall -------------------------------------------------

    def _seam_classes(self) -> list[tuple[_t.Any, str]]:
        import importlib

        targets: list[tuple[_t.Any, str]] = []
        for module_name, class_name, attr in _SEAMS:
            module = importlib.import_module(module_name)
            targets.append((getattr(module, class_name), attr))
        for module_name, attr in _MODULE_SEAMS:
            targets.append((importlib.import_module(module_name), attr))
        return targets

    def install(self) -> None:
        """Fill every seam; raises if any observability is already live."""
        from repro.sim.engine import Engine

        if self._installed:
            raise ObservabilityError("this Observability is already installed")
        targets = self._seam_classes()
        busy = [
            f"{target.__name__}.{attr}"
            for target, attr in targets
            if getattr(target, attr) is not None
        ]
        if busy:
            raise ObservabilityError(
                f"observability seams already installed: {', '.join(busy)}"
            )
        for target, attr in targets:
            setattr(target, attr, self)
        Engine.add_global_event_sink(self._event_sink)
        self._installed = True

    def uninstall(self) -> None:
        """Restore every seam to ``None`` (idempotent)."""
        from repro.sim.engine import Engine

        if not self._installed:
            return
        for target, attr in self._seam_classes():
            if getattr(target, attr) is self:
                setattr(target, attr, None)
        with contextlib.suppress(ValueError):
            Engine.remove_global_event_sink(self._event_sink)
        self._installed = False

    @property
    def installed(self) -> bool:
        return self._installed

    @contextlib.contextmanager
    def activated(self) -> _t.Iterator["Observability"]:
        """``with obs.activated(): ...`` — install, run, always uninstall."""
        self.install()
        try:
            yield self
        finally:
            self.uninstall()

    # -- engine metrics sink -------------------------------------------------

    def _event_sink(self, engine: "Engine", when: float, seq: int, event: _t.Any) -> None:
        index = self.recorder.engine_index(engine)
        self.metrics.inc("repro_engine_events_total", 1.0, engine=str(index))
        due = self._next_snapshot.get(index, self.window_ns)
        if when >= due:
            self.metrics.snapshot(index, when)
            windows = int(when // self.window_ns) + 1
            self._next_snapshot[index] = windows * self.window_ns

    def _on_span_finish(self, span: Span) -> None:
        self.metrics.inc("repro_spans_total", 1.0, component=span.component)
        self.metrics.observe(
            "repro_span_duration_ns", span.duration_ns, component=span.component
        )

    # -- process lifecycle (delegated to the recorder) -----------------------

    def on_create(self, proc: "Process") -> None:
        self.recorder.on_create(proc)

    def on_resume(self, proc: "Process", event: "Event") -> None:
        self.recorder.on_resume(proc, event)

    def on_suspend(self, proc: "Process", target: "Event") -> None:
        self.recorder.on_suspend(proc, target)

    def on_finish(self, proc: "Process") -> None:
        self.recorder.on_finish(proc)

    # -- generic annotations (coherence, transport, cpu, manager seams) ------

    def annotate(self, **attrs: _t.Any) -> None:
        self.recorder.annotate(**attrs)

    def add(self, key: str, delta: float) -> None:
        self.recorder.add(key, delta)

    def route_time(self, remote: bool, latency_ns: float, transfer_ns: float) -> None:
        self.recorder.route_time(remote, latency_ns, transfer_ns)

    # -- session seam --------------------------------------------------------

    def session_begin(self, session: _t.Any, op: str, nbytes: int) -> Span:
        """Open a session-access span; the data-path process the session
        spawns next becomes its child."""
        self._federate_runtime(session.runtime)
        span = self.recorder.open(f"session.{op}", "session", session.runtime.engine)
        span.attrs["op"] = op
        span.attrs["server"] = session.server_id
        span.attrs["bytes"] = nbytes
        return span

    def session_end(self, span: Span, proc: "Process") -> None:
        """Close *span* when the wrapped data-path process completes."""
        engine = proc.engine

        def close(_event: _t.Any) -> None:
            self.recorder.finish(span, engine.now)

        assert proc.callbacks is not None  # the process was just created
        proc.callbacks.append(close)

    # -- driver (tenant request) seam ----------------------------------------

    def request_begin(self, driver: _t.Any, tenant_id: str, op_index: int) -> Span:
        self._federate("cluster", driver.manager.stats, driver.engine)
        span = self.recorder.open(f"request.{tenant_id}", "request", driver.engine)
        span.attrs["tenant"] = tenant_id
        span.attrs["op_index"] = op_index
        return span

    def request_end(self, span: Span, now: float, op: str, outcome: str) -> None:
        span.attrs["op"] = op
        span.attrs["outcome"] = outcome
        self.recorder.finish(span, now)
        self.metrics.inc("repro_requests_total", 1.0, op=op, outcome=outcome)

    def ingest_report(self, report: _t.Any) -> None:
        """Fold a finished :class:`~repro.cluster.driver.DriverReport`
        into the metrics registry (fairness, per-tenant throughput, and
        rack-level latency quantiles)."""
        self.metrics.set_gauge("repro_cluster_fairness_jain", report.fairness)
        self.metrics.set_gauge(
            "repro_cluster_rejection_rate", report.rejection_rate
        )
        for tenant in report.tenants:
            self.metrics.set_gauge(
                "repro_tenant_throughput_ops_per_s",
                tenant.throughput_ops_per_s,
                tenant=tenant.tenant_id,
            )
            self.metrics.inc(
                "repro_tenant_ops_total", float(tenant.ops), tenant=tenant.tenant_id
            )
        for name, value in sorted(report.latency_summary().items()):
            self.metrics.set_gauge(
                "repro_cluster_request_latency_ns", value, quantile=name
            )

    # -- vector-sum (microbenchmark) seam ------------------------------------

    def rep_begin(self, engine: _t.Any, config: str, link: str, rep: int) -> Span:
        span = self.recorder.open("vector_sum.rep", "request", engine)
        span.attrs["op"] = f"scan:{config}"
        span.attrs["link"] = link
        span.attrs["rep"] = rep
        return span

    def rep_end(self, span: Span, now: float, nbytes: int) -> None:
        span.attrs["bytes"] = nbytes
        self.recorder.finish(span, now)

    # -- coherence seam ------------------------------------------------------

    def coherence_op(
        self, directory: _t.Any, op: str, host: int, line: int, hit: bool
    ) -> None:
        self._federate_coherence(directory)
        self.recorder.annotate(op=op, host=host, line=line, hit=hit)
        self.metrics.inc("repro_coherence_ops_total", 1.0, op=op)

    # -- balancer seam -------------------------------------------------------

    def epoch_done(self, report: _t.Any) -> None:
        self.recorder.annotate(
            epoch=report.epoch,
            migrations=len(report.migrations),
            bytes_moved=report.bytes_moved,
        )
        self.metrics.inc("repro_migration_bytes_total", float(report.bytes_moved))

    # -- arena gauntlet seam -------------------------------------------------

    def gauntlet_begin(self, engine: _t.Any, allocator: str, trace: str) -> Span:
        """Open the request-root span for one gauntlet replay."""
        span = self.recorder.open(f"gauntlet.{allocator}", "request", engine)
        span.attrs["op"] = f"gauntlet:{trace}"
        span.attrs["allocator"] = allocator
        return span

    def gauntlet_end(self, span: Span, now: float) -> None:
        self.recorder.finish(span, now)

    def arena_sample(
        self, allocator: str, trace: str, fragmentation: float, largest_hole: int
    ) -> None:
        """One fragmentation sample: gauge (latest) plus histogram (the
        whole replay's distribution) per (allocator, trace)."""
        self.metrics.set_gauge(
            "repro_arena_fragmentation", fragmentation, allocator=allocator, trace=trace
        )
        self.metrics.observe(
            "repro_arena_fragmentation_hist",
            fragmentation,
            allocator=allocator,
            trace=trace,
        )
        self.metrics.set_gauge(
            "repro_arena_largest_hole_bytes",
            float(largest_hole),
            allocator=allocator,
            trace=trace,
        )

    def arena_failure(self, allocator: str, trace: str) -> None:
        self.metrics.inc(
            "repro_arena_alloc_failures_total", 1.0, allocator=allocator, trace=trace
        )

    def arena_compaction(self, allocator: str, trace: str, report: _t.Any) -> None:
        """Fold one compaction pass into the metrics registry."""
        self.metrics.inc(
            "repro_arena_compactions_total", 1.0, allocator=allocator, trace=trace
        )
        self.metrics.inc(
            "repro_arena_compaction_bytes_total",
            float(report.bytes_moved),
            allocator=allocator,
            trace=trace,
        )
        self.metrics.set_gauge(
            "repro_arena_fragmentation",
            report.fragmentation_after,
            allocator=allocator,
            trace=trace,
        )

    # -- stat-source federation ----------------------------------------------

    def _federate(self, prefix: str, source: _t.Any, engine: _t.Any) -> None:
        key = id(source)
        if key in self._federated:
            return
        self._federated.add(key)
        self.metrics.add_statset(prefix, source, engine)

    def _federate_runtime(self, runtime: _t.Any) -> None:
        pool = runtime.pool
        key = id(pool)
        if key in self._federated:
            return
        self._federated.add(key)
        transport = getattr(pool, "transport", None)
        if transport is not None:
            self.metrics.add_transport(transport)
        profiler = getattr(pool, "profiler", None)
        if profiler is not None:
            self.metrics.add_profiler(profiler)

    def _federate_coherence(self, directory: _t.Any) -> None:
        key = id(directory)
        if key in self._federated:
            return
        self._federated.add(key)
        self.metrics.add_coherence(directory.stats)

    # -- dumping -------------------------------------------------------------

    def final_snapshot(self) -> None:
        """Snapshot every engine's metrics at its current sim time."""
        for index, engine in enumerate(self.recorder.engines):
            self.metrics.snapshot(index, engine.now)

    def dump(self, out_dir: _t.Any) -> list[str]:
        """Write the full dump set into *out_dir*; returns the paths."""
        from repro.obs.export import write_dump

        self.final_snapshot()
        return write_dump(self, out_dir)
