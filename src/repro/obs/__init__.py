"""``repro.obs`` — unified observability over the simulator.

One facade, :class:`Observability`, turns on everything: causal spans
across every instrumented layer (driver requests, session accesses,
coherence transactions, fabric hops, streaming cores), a labeled
metrics registry federating the existing per-component stats, and
deterministic exporters (Perfetto-loadable Chrome trace JSON,
Prometheus text, CSV/JSON time series).

Usage::

    from repro.obs import Observability

    obs = Observability()
    with obs.activated():
        run_experiment()
    obs.dump("obs-out/")          # trace.json, metrics.prom, ...

Everything is off by default: the seams the facade fills are ``None``
class attributes, costing one attribute load per call site when
uninstalled (the ``bench_cluster.py --smoke`` overhead gate keeps it
under 2%).
"""

from repro.obs.export import chrome_trace, prometheus_text, spans_json, write_dump
from repro.obs.metrics import MetricsRegistry, Sample
from repro.obs.report import latency_breakdown, render_breakdown, summarize_dump
from repro.obs.tracing import Observability, Span, SpanRecorder

__all__ = [
    "MetricsRegistry",
    "Observability",
    "Sample",
    "Span",
    "SpanRecorder",
    "chrome_trace",
    "latency_breakdown",
    "prometheus_text",
    "render_breakdown",
    "spans_json",
    "summarize_dump",
    "write_dump",
]
