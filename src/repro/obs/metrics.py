"""The labeled metrics registry behind one scrape API.

The simulator already collects plenty of numbers — per-component
:class:`~repro.sim.stats.StatSet` groups, the transport's byte counters,
:class:`~repro.core.coherence.protocol.CoherenceStats`, the
:class:`~repro.core.profiling.AccessProfiler` — but each lives in its
own silo with its own shape.  :class:`MetricsRegistry` federates them
behind the usual counter/gauge/histogram trio with Prometheus-style
labels, plus *sim-time-windowed snapshots*: while observability is
installed, the registry samples every scrapable value each time an
engine's clock crosses a window boundary, producing the CSV/JSON time
series :mod:`repro.obs.export` dumps.

Determinism: metric keys are ``(name, sorted(labels))`` tuples and every
iteration is over sorted keys, so two same-seed runs scrape and render
byte-identical output regardless of dict insertion history.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ObservabilityError
from repro.sim.stats import Histogram

#: a metric identity: (name, ((label, value), ...)) with labels sorted
MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def metric_key(name: str, labels: dict[str, str]) -> MetricKey:
    return name, tuple(sorted(labels.items()))


@dataclasses.dataclass(frozen=True)
class Sample:
    """One windowed observation of one metric."""

    engine_index: int
    time_ns: float
    name: str
    labels: tuple[tuple[str, str], ...]
    value: float

    def label_text(self) -> str:
        return ";".join(f"{k}={v}" for k, v in self.labels)


class MetricsRegistry:
    """Counters, gauges, and histograms with labels, plus federated
    read-only sources scraped at snapshot time."""

    def __init__(self) -> None:
        self._counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, float] = {}
        self._histograms: dict[MetricKey, Histogram] = {}
        #: scrape-time adapters: each returns (name, labels, value) rows
        self._sources: list[_t.Callable[[], _t.Iterable[tuple[str, dict[str, str], float]]]] = []
        #: windowed snapshot rows, in emission order
        self.series: list[Sample] = []

    # -- the write API -------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ObservabilityError(f"counter {name} cannot decrease (got {amount})")
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        self._gauges[metric_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: str) -> None:
        key = metric_key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram()
        hist.record(value)

    def histogram(self, name: str, **labels: str) -> Histogram | None:
        return self._histograms.get(metric_key(name, labels))

    # -- federation ----------------------------------------------------------

    def register_source(
        self, fn: _t.Callable[[], _t.Iterable[tuple[str, dict[str, str], float]]]
    ) -> None:
        """Add a scrape-time adapter yielding (name, labels, value) rows."""
        self._sources.append(fn)

    def add_statset(self, prefix: str, statset: _t.Any, engine: _t.Any) -> None:
        """Federate a :class:`~repro.sim.stats.StatSet`: its flattened
        ``as_dict`` keys become ``repro_<prefix>_<key>`` gauges."""

        def scrape() -> _t.Iterator[tuple[str, dict[str, str], float]]:
            flat = statset.as_dict(engine.now)
            for key in sorted(flat):
                yield f"repro_{prefix}_{key}", {}, flat[key]

        self._sources.append(scrape)

    def add_transport(self, transport: _t.Any) -> None:
        """Federate a :class:`~repro.fabric.transport.MemoryTransport`'s
        issue/byte counters."""

        def scrape() -> _t.Iterator[tuple[str, dict[str, str], float]]:
            yield "repro_transport_reads_issued_total", {}, float(transport.reads_issued)
            yield "repro_transport_writes_issued_total", {}, float(transport.writes_issued)
            yield "repro_transport_bytes_read_total", {}, float(transport.bytes_read)
            yield "repro_transport_bytes_written_total", {}, float(transport.bytes_written)

        self._sources.append(scrape)

    def add_coherence(self, stats: _t.Any) -> None:
        """Federate :class:`~repro.core.coherence.protocol.CoherenceStats`."""

        def scrape() -> _t.Iterator[tuple[str, dict[str, str], float]]:
            for field in sorted(dataclasses.asdict(stats)):
                yield (
                    f"repro_coherence_{field}_total",
                    {},
                    float(getattr(stats, field)),
                )

        self._sources.append(scrape)

    def add_profiler(self, profiler: _t.Any) -> None:
        """Federate the :class:`~repro.core.profiling.AccessProfiler`."""

        def scrape() -> _t.Iterator[tuple[str, dict[str, str], float]]:
            yield "repro_profiler_samples_total", {}, float(profiler.samples_taken)
            yield "repro_profiler_epoch", {}, float(profiler.epoch)
            remote = profiler.remote_bytes_by_extent()
            total = sum(sum(c.values()) for c in remote.values())
            yield "repro_profiler_remote_bytes", {}, float(total)

        self._sources.append(scrape)

    # -- scraping ------------------------------------------------------------

    def collect(self) -> list[tuple[str, str, tuple[tuple[str, str], ...], float]]:
        """Every current scalar value as ``(type, name, labels, value)``
        rows, deterministically ordered."""
        rows: list[tuple[str, str, tuple[tuple[str, str], ...], float]] = []
        for (name, labels), value in self._counters.items():
            rows.append(("counter", name, labels, value))
        for (name, labels), value in self._gauges.items():
            rows.append(("gauge", name, labels, value))
        for fn in self._sources:
            for name, labeldict, value in fn():
                rows.append(("gauge", name, tuple(sorted(labeldict.items())), value))
        rows.sort(key=lambda r: (r[1], r[2], r[0]))
        return rows

    def histograms(self) -> list[tuple[str, tuple[tuple[str, str], ...], Histogram]]:
        """Every histogram, deterministically ordered."""
        out = [(name, labels, hist) for (name, labels), hist in self._histograms.items()]
        out.sort(key=lambda r: (r[0], r[1]))
        return out

    def snapshot(self, engine_index: int, when: float) -> None:
        """Append one windowed sample of every scalar to the series."""
        for _type, name, labels, value in self.collect():
            self.series.append(
                Sample(
                    engine_index=engine_index,
                    time_ns=when,
                    name=name,
                    labels=labels,
                    value=value,
                )
            )
