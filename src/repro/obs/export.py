"""Exporters: Chrome trace-event JSON, Prometheus text, time series.

All three formats are rendered deterministically — sorted keys, compact
separators, counter-derived ids — so two same-seed runs produce
byte-identical files.  That property is load-bearing: the ``obs``
scenario in :mod:`repro.check.determinism` diffs whole trace exports.

* :func:`chrome_trace` — the Trace Event Format's ``"X"`` (complete)
  events, loadable by Perfetto / ``chrome://tracing``.  ``pid`` is the
  engine index (one simulated rack per "process"), ``tid`` is the root
  span id of each causal tree (one request per "thread"), so a tenant
  request renders as one swim lane with its session/coherence/fabric
  children nested underneath.
* :func:`prometheus_text` — the text exposition format; histograms are
  rendered as summaries with ``quantile`` labels (one sort pass via
  :meth:`~repro.sim.stats.Histogram.percentile_many`).
* :func:`timeseries_csv` / :func:`timeseries_json` — the windowed
  metric snapshots as flat rows.
"""

from __future__ import annotations

import json
import pathlib
import re
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import Observability, Span

#: Prometheus metric/label name sanitizer
_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: quantiles rendered for every histogram summary
_SUMMARY_QUANTILES = (0.5, 0.9, 0.99)


def _compact(doc: _t.Any) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


# -- Chrome trace-event JSON --------------------------------------------------


def root_of(spans: _t.Sequence["Span"]) -> dict[int, int]:
    """Map every span id to the id of its tree's root."""
    by_id = {span.span_id: span for span in spans}
    roots: dict[int, int] = {}

    def resolve(span_id: int) -> int:
        found = roots.get(span_id)
        if found is not None:
            return found
        span = by_id[span_id]
        if span.parent_id is None or span.parent_id not in by_id:
            roots[span_id] = span_id
        else:
            roots[span_id] = resolve(span.parent_id)
        return roots[span_id]

    for span in spans:
        resolve(span.span_id)
    return roots


def chrome_trace(obs: "Observability") -> str:
    """Render every recorded span as Trace Event Format JSON."""
    spans = obs.recorder.spans
    roots = root_of(spans)
    events: list[dict[str, _t.Any]] = []

    engine_count = len(obs.recorder.engines)
    for index in range(engine_count):
        events.append(
            {
                "ph": "M",
                "pid": index,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"engine{index}"},
            }
        )
    named_threads: set[tuple[int, int]] = set()
    for span in spans:
        root_id = roots[span.span_id]
        if span.span_id == root_id and (span.engine_index, root_id) not in named_threads:
            named_threads.add((span.engine_index, root_id))
            events.append(
                {
                    "ph": "M",
                    "pid": span.engine_index,
                    "tid": root_id,
                    "name": "thread_name",
                    "args": {"name": span.name},
                }
            )

    for span in spans:
        end_ns = span.start_ns if span.end_ns is None else span.end_ns
        args: dict[str, _t.Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.end_ns is None:
            args["unfinished"] = True
        args.update(span.attrs)
        events.append(
            {
                "ph": "X",
                "pid": span.engine_index,
                "tid": roots[span.span_id],
                "ts": span.start_ns / 1000.0,  # trace-event ts is in us
                "dur": (end_ns - span.start_ns) / 1000.0,
                "name": span.name,
                "cat": span.component,
                "args": args,
            }
        )

    return _compact({"displayTimeUnit": "ns", "traceEvents": events})


# -- Prometheus text exposition -----------------------------------------------


def _sanitize(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_text(labels: _t.Iterable[tuple[str, str]]) -> str:
    parts = [f'{_sanitize(k)}="{v}"' for k, v in labels]
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(metrics: "MetricsRegistry") -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()
    for mtype, name, labels, value in metrics.collect():
        clean = _sanitize(name)
        if clean not in typed:
            typed.add(clean)
            lines.append(f"# TYPE {clean} {mtype}")
        lines.append(f"{clean}{_label_text(labels)} {_fmt_value(value)}")
    for name, labels, hist in metrics.histograms():
        clean = _sanitize(name)
        if clean not in typed:
            typed.add(clean)
            lines.append(f"# TYPE {clean} summary")
        count = len(hist)
        if count:
            for q, qv in zip(_SUMMARY_QUANTILES, hist.percentile_many(_SUMMARY_QUANTILES)):
                qlabels = (*labels, ("quantile", str(q)))
                lines.append(f"{clean}{_label_text(qlabels)} {_fmt_value(qv)}")
        lines.append(f"{clean}_count{_label_text(labels)} {count}")
        total = hist.mean() * count if count else 0.0
        lines.append(f"{clean}_sum{_label_text(labels)} {_fmt_value(total)}")
    return "\n".join(lines) + "\n"


# -- time series --------------------------------------------------------------


def timeseries_csv(metrics: "MetricsRegistry") -> str:
    """Windowed snapshots as CSV rows."""
    lines = ["engine,time_ns,name,labels,value"]
    for sample in metrics.series:
        lines.append(
            f"{sample.engine_index},{sample.time_ns},{sample.name},"
            f"{sample.label_text()},{_fmt_value(sample.value)}"
        )
    return "\n".join(lines) + "\n"


def timeseries_json(metrics: "MetricsRegistry") -> str:
    """Windowed snapshots as a JSON array."""
    rows = [
        {
            "engine": sample.engine_index,
            "time_ns": sample.time_ns,
            "name": sample.name,
            "labels": dict(sample.labels),
            "value": sample.value,
        }
        for sample in metrics.series
    ]
    return _compact(rows)


# -- span dump ----------------------------------------------------------------


def spans_json(obs: "Observability") -> str:
    """Every span as plain JSON (the ``repro obs`` CLI's input)."""
    return _compact({"spans": [span.to_dict() for span in obs.recorder.spans]})


# -- the dump directory -------------------------------------------------------

#: filename -> renderer; the on-disk contract of ``--obs`` dumps
DUMP_FILES: dict[str, _t.Callable[["Observability"], str]] = {
    "trace.json": chrome_trace,
    "metrics.prom": lambda obs: prometheus_text(obs.metrics),
    "timeseries.csv": lambda obs: timeseries_csv(obs.metrics),
    "timeseries.json": lambda obs: timeseries_json(obs.metrics),
    "spans.json": spans_json,
}


def write_dump(obs: "Observability", out_dir: _t.Any) -> list[str]:
    """Write every dump file into *out_dir*; returns the written paths."""
    directory = pathlib.Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[str] = []
    for filename, render in DUMP_FILES.items():
        path = directory / filename
        path.write_text(render(obs))
        written.append(str(path))
    return written
