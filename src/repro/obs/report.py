"""The latency-breakdown view: where did each request's time go?

Instrumented layers charge simulated nanoseconds to category attributes
on whatever span is running (``cat_cache_ns``, ``cat_link_ns``,
``cat_fabric_ns``, ``cat_dram_ns``, ``cat_queue_ns``,
``cat_migration_ns``); the breakdown
walks each request tree, sums the categories over the subtree, and
reports them as percentages of the request's wall time.  Time the
instrumentation did not attribute (pure compute, model bookkeeping)
lands in ``other``.

Works on live :class:`~repro.obs.tracing.Span` objects or on the plain
dicts of a ``spans.json`` dump, so the ``repro obs`` CLI renders dumps
without re-running anything.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as _t

from repro.analysis.report import format_table
from repro.errors import ObservabilityError

#: the latency categories, in display order
CATEGORIES = ("cache", "link", "fabric", "dram", "queue", "migration")

#: root-eligible components: a request tree starts at a driver request /
#: microbenchmark repetition, or a bare session access outside any request
_ROOT_COMPONENTS = ("request", "session")


def _as_dicts(spans: _t.Sequence[_t.Any]) -> list[dict[str, _t.Any]]:
    return [span if isinstance(span, dict) else span.to_dict() for span in spans]


@dataclasses.dataclass
class BreakdownRow:
    """Aggregated breakdown for one request kind."""

    op: str
    requests: int
    wall_ns: float  # summed wall time across requests
    category_ns: dict[str, float]
    other_ns: float

    @property
    def mean_wall_ns(self) -> float:
        return self.wall_ns / self.requests if self.requests else 0.0

    def percent(self, category: str) -> float:
        denom = sum(self.category_ns.values()) + self.other_ns
        if denom <= 0:
            return 0.0
        part = self.other_ns if category == "other" else self.category_ns[category]
        return 100.0 * part / denom


def latency_breakdown(spans: _t.Sequence[_t.Any]) -> list[BreakdownRow]:
    """Aggregate per-request latency categories, grouped by op kind."""
    flat = _as_dicts(spans)
    by_id = {span["span_id"]: span for span in flat}
    children: dict[int, list[dict[str, _t.Any]]] = {}
    for span in flat:
        parent = span["parent_id"]
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)

    def has_root_ancestor(span: dict[str, _t.Any]) -> bool:
        parent = span["parent_id"]
        while parent is not None and parent in by_id:
            ancestor = by_id[parent]
            if ancestor["component"] in _ROOT_COMPONENTS:
                return True
            parent = ancestor["parent_id"]
        return False

    roots = [
        span
        for span in flat
        if span["component"] in _ROOT_COMPONENTS and not has_root_ancestor(span)
    ]

    def subtree_categories(root: dict[str, _t.Any]) -> dict[str, float]:
        sums = {cat: 0.0 for cat in CATEGORIES}
        stack = [root]
        while stack:
            span = stack.pop()
            attrs = span["attrs"]
            for cat in CATEGORIES:
                sums[cat] += attrs.get(f"cat_{cat}_ns", 0.0)
            stack.extend(children.get(span["span_id"], ()))
        return sums

    grouped: dict[str, BreakdownRow] = {}
    for root in roots:
        op = str(root["attrs"].get("op", root["name"]))
        wall = root["end_ns"] - root["start_ns"]
        sums = subtree_categories(root)
        other = max(0.0, wall - sum(sums.values()))
        row = grouped.get(op)
        if row is None:
            row = grouped[op] = BreakdownRow(
                op=op, requests=0, wall_ns=0.0,
                category_ns={cat: 0.0 for cat in CATEGORIES}, other_ns=0.0,
            )
        row.requests += 1
        row.wall_ns += wall
        for cat in CATEGORIES:
            row.category_ns[cat] += sums[cat]
        row.other_ns += other
    return [grouped[op] for op in sorted(grouped)]


def render_breakdown(rows: _t.Sequence[BreakdownRow], title: str = "") -> str:
    """The breakdown as an aligned text table."""
    if not rows:
        return "no request spans recorded (nothing reached an instrumented layer)"
    headers = ["op", "requests", "avg wall ns", *(f"{c}%" for c in CATEGORIES), "other%"]
    table_rows = [
        [
            row.op,
            row.requests,
            row.mean_wall_ns,
            *(row.percent(cat) for cat in CATEGORIES),
            row.percent("other"),
        ]
        for row in rows
    ]
    return format_table(
        headers, table_rows, title=title or "latency breakdown (% of request wall time)"
    )


# -- dump loading (the `repro obs` CLI) ---------------------------------------


def load_spans(dump_dir: _t.Any) -> list[dict[str, _t.Any]]:
    """Read ``spans.json`` from an ``--obs`` dump directory."""
    path = pathlib.Path(dump_dir) / "spans.json"
    if not path.is_file():
        raise ObservabilityError(f"no spans.json under {pathlib.Path(dump_dir)}")
    doc = json.loads(path.read_text())
    spans = doc.get("spans")
    if not isinstance(spans, list):
        raise ObservabilityError(f"{path} is not a spans dump")
    return spans


def summarize_dump(dump_dir: _t.Any) -> str:
    """Render one dump directory: span counts plus the breakdown table."""
    directory = pathlib.Path(dump_dir)
    spans = load_spans(directory)
    components: dict[str, int] = {}
    for span in spans:
        components[span["component"]] = components.get(span["component"], 0) + 1
    lines = [
        f"{directory}: {len(spans)} spans "
        f"({', '.join(f'{k}={v}' for k, v in sorted(components.items()))})",
        render_breakdown(latency_breakdown(spans)),
    ]
    return "\n".join(lines)


def iter_dump_dirs(root: _t.Any) -> list[pathlib.Path]:
    """Dump directories under *root*: itself, or its child dumps."""
    directory = pathlib.Path(root)
    if (directory / "spans.json").is_file():
        return [directory]
    if not directory.is_dir():
        raise ObservabilityError(f"no such dump directory: {directory}")
    found = sorted(
        child for child in directory.iterdir()
        if child.is_dir() and (child / "spans.json").is_file()
    )
    if not found:
        raise ObservabilityError(f"no observability dumps under {directory}")
    return found
