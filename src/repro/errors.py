"""Exception hierarchy for the LMP reproduction.

All library errors derive from :class:`ReproError` so applications can
catch everything from this package with one ``except`` clause.  The
failure-domain errors (§5 of the paper: "failure reporting to application
through exceptions") live here too so the public API can raise them
without importing the failures subpackage.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly or reached an invalid state."""


class CapacityError(ReproError):
    """An allocation cannot be satisfied by the available memory.

    Raised, for example, when the 96 GB vector of Figure 5 is placed on a
    physical pool whose pooled capacity is only 64 GB.
    """


class AllocationError(CapacityError):
    """An allocator could not find a suitable free range despite capacity."""


class UnknownHandleError(AllocationError):
    """A free/resolve used a handle the allocator never granted (an
    offset outside the managed range, misaligned, or pointing into the
    middle of a live block)."""


class StaleHandleError(AllocationError):
    """A handle refers to a block that compaction has since relocated.

    The error message carries the block's new offset; callers holding
    plain integer offsets across a compaction pass must re-resolve them
    from the :class:`~repro.core.migration.CompactionReport` move map.
    """


class AddressError(ReproError):
    """A logical or physical address is invalid or cannot be translated."""


class ProtectionError(AddressError):
    """An access violates a region's protection (e.g. writing another
    server's private region)."""


class MigrationError(ReproError):
    """A buffer migration could not be started or completed."""


class CoherenceError(ReproError):
    """The coherence protocol was driven into an illegal transition."""


class MemoryFailureError(ReproError):
    """An access touched memory lost to a server crash and no redundancy
    scheme could mask the failure (§5, "failure reporting to application
    through exceptions")."""

    def __init__(self, message: str, *, server_id: int | None = None) -> None:
        super().__init__(message)
        self.server_id = server_id


class RecoveryError(ReproError):
    """Redundant data exists but reconstruction failed (e.g. too many
    erasures for the Reed-Solomon code parameters)."""


class InfeasibleWorkloadError(CapacityError):
    """A workload cannot run on a deployment at all (Figure 5's physical
    pool with the 96 GB vector)."""


class ClusterError(ReproError):
    """Base class for errors raised by the ``repro.cluster`` control
    plane (admission, leases, tenant lifecycle)."""


class AdmissionError(ClusterError, CapacityError):
    """The control plane declined an allocation request.

    Also a :class:`CapacityError` so tenants written against the plain
    pool API handle cluster rejections with the same guard."""


class QuotaExceededError(AdmissionError):
    """A request would push a tenant past its capacity quota."""


class TenantRevokedError(ClusterError):
    """An operation was attempted by (or on behalf of) a tenant whose
    leases have been revoked."""


class LeaseError(ClusterError):
    """A lease was used incorrectly (unknown, already released, or
    owned by a different tenant)."""


class ObservabilityError(ReproError):
    """The ``repro.obs`` subsystem was misused (double-install, seams
    already occupied, or an export asked of an empty recorder)."""


class SanitizerError(ReproError):
    """Base class for every error raised by the ``repro.check`` runtime
    sanitizers (the substitute for silicon validation: we have no
    hardware to cross-check the models against, so the sanitizers
    enforce the invariants a real memory system would)."""


class DoubleFreeError(SanitizerError, AllocationError):
    """A range was freed twice.

    Also an :class:`AllocationError` so callers that guard plain
    allocator misuse keep working when the sanitizer is installed.
    """


class UseAfterFreeError(SanitizerError, AddressError):
    """An access touched a range after it was returned to the allocator."""


class MemoryLeakError(SanitizerError):
    """Live allocations remained at scenario teardown."""


class OverlapError(SanitizerError):
    """An allocator granted a range overlapping a live allocation."""


class CoherenceInvariantError(SanitizerError, CoherenceError):
    """A coherence transition left the directory in a state violating a
    MESI-style invariant (two Modified owners, Shared copies coexisting
    with Modified, or a snoop filter out of sync with the sharer sets)."""


class DeterminismError(SanitizerError):
    """Two runs of the same scenario with the same seed produced
    different event streams."""


class DeadlockError(SimulationError, SanitizerError):
    """The event loop ran dry while processes were still waiting.

    Also a :class:`SanitizerError`: with the ``repro.check.races``
    deadlock detector installed the message carries the wait-for cycle
    (who waits on whom, and through which semaphore or process)."""


class ModelCheckError(SanitizerError):
    """The explicit-state model checker (``repro.check.model``) was
    misused — unknown spec or scope, a malformed trace handed to a
    replay adapter, or an exploration budget that cannot be satisfied.

    Protocol *violations* are not exceptions: the explorer reports them
    as counterexamples so the runner can render and replay them."""


class FlowAnalysisError(SanitizerError):
    """The dataflow pass (``repro.check.flow``) failed internally — an
    unreadable file, or a domain that would not converge.

    Flow *findings* are not exceptions: the analyzer reports them as
    violations so the runner can render all of them at once."""


class DataRaceError(SanitizerError):
    """Two accesses to the same shared frame — at least one a write —
    were not ordered by happens-before (no coherence transition, sync
    primitive, resource handoff, or fork/join edge between them)."""


class LocksetError(SanitizerError):
    """Eraser-style lockset violation: a frame was accessed by multiple
    processes with a write, and the intersection of the resources held
    across those accesses is empty (no single lock protects it)."""
