"""Baselines beyond the paper's own comparison set.

* :mod:`repro.baselines.software` — software memory disaggregation
  (RDMA-style far memory), the §2.1 background the paper argues CXL
  obsoletes: "software inititates requests to access disaggregated
  memory ... This process is slow and poorly aligned with CPU
  architectural features."
"""

from repro.baselines.software import SoftwareRemoteMemory

__all__ = ["SoftwareRemoteMemory"]
