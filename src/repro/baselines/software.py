"""Software memory disaggregation: RDMA-style far memory.

The §2.1 mechanism hardware disaggregation replaces: "using RDMA,
application libraries or the OS must post memory access requests to
network queues; the NIC then adds completions to completion queues,
which software drains."

The model charges what that pipeline actually costs:

* **post overhead** — CPU work to build and ring a work-queue entry
  (~250 ns of instructions, cache misses, doorbell MMIO),
* **NIC processing** — per-WQE service at the initiator and target NICs
  (bounded message rate, modeled as FIFO service centers),
* **fabric time** — the same link fluid model the CXL pools use (the
  wire isn't slower; the *software* is),
* **completion overhead** — polling the CQ and dispatching (~200 ns),
* **bounded queue depth** — at most ``queue_depth`` outstanding
  requests per QP, which caps small-access throughput by Little's law
  exactly the way real verbs do.

Large transfers amortize all of this and reach wire speed — which is
why RDMA far-memory systems are fine for paging and terrible for
cache-line-sized load/store patterns, the paper's core §2.1 point.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigError
from repro.sim.resources import FifoQueue, Semaphore
from repro.topology.builder import Deployment
from repro.units import us

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.process import Process


@dataclasses.dataclass(frozen=True)
class SoftwareIoCosts:
    """The software/NIC overheads of one RDMA-style operation (ns)."""

    post_ns: float = 250.0  # WQE build + doorbell
    completion_ns: float = 200.0  # CQ poll + dispatch
    nic_service_ns: float = 100.0  # per-WQE NIC pipeline occupancy
    interrupt_ns: float = 0.0  # 0 = busy polling; set ~2000 for eventfd paths

    @property
    def per_op_software_ns(self) -> float:
        return self.post_ns + self.completion_ns + self.interrupt_ns


class SoftwareRemoteMemory:
    """One server's verbs-style access path to a remote memory target."""

    def __init__(
        self,
        deployment: Deployment,
        requester: str,
        target: str,
        costs: SoftwareIoCosts | None = None,
        queue_depth: int = 32,
    ) -> None:
        if queue_depth < 1:
            raise ConfigError(f"queue_depth must be >= 1, got {queue_depth}")
        self.deployment = deployment
        self.engine = deployment.engine
        self.fluid = deployment.fluid
        self.switch = deployment.switch
        self.requester = requester
        self.target = target
        self.costs = costs or SoftwareIoCosts()
        self.queue_depth = queue_depth
        self._slots = Semaphore(self.engine, capacity=queue_depth)
        #: initiator and target NIC pipelines (per-WQE service)
        self._initiator_nic = FifoQueue(
            self.engine, self.costs.nic_service_ns, name=f"{requester}.nic"
        )
        self._target_nic = FifoQueue(
            self.engine, self.costs.nic_service_ns, name=f"{target}.nic"
        )
        self.ops_posted = 0
        self.bytes_moved = 0

    # -- one-sided read (the far-memory workhorse) -------------------------------

    def read(self, addr: int, size: int) -> "Process":
        """One-sided RDMA read; the process returns its end-to-end latency."""
        return self.engine.process(self._op_body(addr, size, write=False), name="rdma.read")

    def write(self, addr: int, size: int) -> "Process":
        """One-sided RDMA write; the process returns its latency."""
        return self.engine.process(self._op_body(addr, size, write=True), name="rdma.write")

    def _op_body(self, addr: int, size: int, write: bool):
        started = self.engine.now
        self.ops_posted += 1
        # bounded outstanding requests per QP
        yield self._slots.acquire()
        try:
            # software posts the WQE
            yield self.engine.timeout(self.costs.post_ns)
            # initiator NIC processes it, request crosses the fabric
            yield self._initiator_nic.submit()
            if write:
                route = self.switch.write_route(self.requester, self.target)
            else:
                route = self.switch.read_route(self.requester, self.target)
            yield self.engine.timeout(route.loaded_latency())
            # target NIC + DMA moves the payload
            yield self._target_nic.submit()
            yield self.fluid.transfer(route.path, float(size), tag="rdma")
            # completion comes back; software drains the CQ
            yield self.engine.timeout(self.costs.per_op_software_ns - self.costs.post_ns)
        finally:
            self._slots.release()
        self.bytes_moved += size
        return self.engine.now - started

    # -- closed-loop microbenchmarks -------------------------------------------

    def measure_latency(self, size: int, samples: int = 8) -> float:
        """Mean latency of back-to-back single ops (unloaded)."""
        total = 0.0
        for _ in range(samples):
            total += self.engine.run(self.read(0, size))
        return total / samples

    def measure_throughput(self, size: int, total_ops: int = 256) -> float:
        """Achieved bandwidth (bytes/ns) with the QP kept full."""
        engine = self.engine

        def issuer():
            pending = [self.read(0, size) for _ in range(total_ops)]
            yield engine.all_of(pending)

        started = engine.now
        engine.run(engine.process(issuer(), name="rdma.bench"))
        elapsed = engine.now - started
        return total_ops * size / elapsed if elapsed else 0.0


def hardware_latency(deployment: Deployment, requester: str, target: str, size: int) -> float:
    """The CXL load/store counterpart: route latency + wire time, no
    software in the loop (for the comparison tables)."""
    route = deployment.switch.read_route(requester, target)
    return route.loaded_latency() + size / min(c.rate for c in route.path)
