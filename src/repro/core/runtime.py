"""The LMP runtime: one object tying the whole system together.

§3.2: "Implementing LMPs requires a per-server runtime and an
application library for allocating, controlling, and setting up
disaggregated memory access ... Furthermore, the runtime must execute
at least two background tasks: one for adjusting the size of shared
regions to minimize remote accesses, and another to find opportunities
for buffer migration."

:class:`LmpRuntime` owns the pool, the profiler, the locality balancer,
the coherent region, the compute-shipping runtime, and the background
loop running both §3.2 tasks on a period.  Applications talk to it
through :class:`~repro.core.api.LmpSession`.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.coherence.protocol import CoherenceDirectory
from repro.core.compute import ComputeRuntime
from repro.core.migration import BalancerReport, LocalityBalancer, PressureEvictor
from repro.core.pool import LogicalMemoryPool
from repro.core.profiling import AccessProfiler
from repro.errors import ConfigError
from repro.mem.interleave import PlacementPolicy
from repro.mem.layout import PageGeometry
from repro.topology.builder import Deployment
from repro.units import mib, ms

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.process import Process


@dataclasses.dataclass
class EpochReport:
    """One background period's work."""

    epoch: int
    balancer: BalancerReport
    shared_bytes: dict[int, int]
    locality_ratio: float


class LmpRuntime:
    """Everything a logical-pool deployment runs."""

    def __init__(
        self,
        deployment: Deployment,
        geometry: PageGeometry | None = None,
        placement: PlacementPolicy | None = None,
        shared_fraction: float = 1.0,
        coherent_bytes: int = mib(64),
        snoop_filter_lines: int = 4096,
        sizing_headroom: float = 0.25,
        profiler: AccessProfiler | None = None,
        balancer_gain_threshold: float = 2.0,
    ) -> None:
        if sizing_headroom < 0:
            raise ConfigError(f"sizing_headroom must be >= 0, got {sizing_headroom}")
        self.deployment = deployment
        self.engine = deployment.engine
        self.pool = LogicalMemoryPool(
            deployment,
            geometry=geometry,
            placement=placement,
            shared_fraction=shared_fraction,
            coherent_bytes=coherent_bytes,
        )
        self.profiler = profiler or AccessProfiler()
        # gain_threshold is in units of extent re-reads per epoch;
        # bandwidth-bound tenants keep the default (a move must pay for
        # its copy), latency-bound tenants set it near zero so small hot
        # objects migrate toward their readers
        self.balancer = LocalityBalancer(
            self.pool, self.profiler, gain_threshold=balancer_gain_threshold
        )
        self.coherence = CoherenceDirectory(
            deployment,
            region_bytes=coherent_bytes,
            snoop_filter_lines=snoop_filter_lines,
        )
        self.compute = ComputeRuntime(self.pool)
        self.evictor = PressureEvictor(self.pool, self.profiler)
        self.sizing_headroom = sizing_headroom
        self._next_coherent_line = 0
        self.epoch_reports: list[EpochReport] = []

    def session(self, server_id: int, observer: _t.Any = None) -> "_t.Any":
        """Open an :class:`~repro.core.api.LmpSession` homed on
        *server_id*; *observer* is a
        :class:`~repro.core.api.SessionObserver` a control plane uses to
        meter the session (lease and quota accounting)."""
        from repro.core.api import LmpSession

        return LmpSession(self, server_id, observer=observer)

    # -- coherent-line allocation (for the sync primitives) -----------------------

    def allocate_coherent_lines(self, count: int) -> int:
        """Reserve *count* consecutive coherent lines; returns the first."""
        if count < 1:
            raise ConfigError(f"need >= 1 lines, got {count}")
        first = self._next_coherent_line
        if first + count > self.coherence.line_count:
            raise ConfigError(
                f"coherent region exhausted: {self.coherence.line_count} lines, "
                f"{first} used, {count} requested"
            )
        self._next_coherent_line += count
        return first

    def reclaim_private(self, server_id: int, nbytes: int) -> "Process":
        """Give *server_id* back *nbytes* of private memory, evicting or
        compacting shared extents as needed (§5: local memory must not
        stay "monopolized by remote servers").  The process returns a
        :class:`~repro.core.migration.ReclaimReport`."""
        return self.evictor.reclaim(server_id, nbytes)

    # -- the §3.2 background tasks ---------------------------------------------

    def background_epoch(self) -> "Process":
        """One period of both background tasks: locality balancing, then
        shared-region resizing toward observed demand.  The process
        returns an :class:`EpochReport`."""
        return self.engine.process(self._epoch_body(), name="runtime.epoch")

    def _epoch_body(self):
        locality = self.profiler.locality_ratio()
        balancer_report = yield self.balancer.run_epoch()
        # Task 2: trim each server's shared region toward what is
        # actually used, with headroom — releasing memory to private use
        # without stranding pool demand.
        shared_after: dict[int, int] = {}
        for sid, region in self.pool.regions.items():
            used = region.shared_used_bytes
            target = int(used * (1.0 + self.sizing_headroom))
            shared_after[sid] = region.set_shared_target(max(target, used))
        report = EpochReport(
            epoch=balancer_report.epoch,
            balancer=balancer_report,
            shared_bytes=shared_after,
            locality_ratio=locality,
        )
        self.epoch_reports.append(report)
        return report

    def run_background(self, epochs: int, period: float = ms(100)) -> "Process":
        """Run the background loop for *epochs* periods; the process
        returns every :class:`EpochReport`."""
        if epochs < 1 or period <= 0:
            raise ConfigError("need epochs >= 1 and a positive period")
        return self.engine.process(
            self._background_body(epochs, period), name="runtime.background"
        )

    def _background_body(self, epochs: int, period: float):
        reports: list[EpochReport] = []
        for _epoch in range(epochs):
            yield self.engine.timeout(period)
            report = yield self.background_epoch()
            reports.append(report)
        return reports
