"""Access profiling: the measurement half of locality balancing (§5).

"We need new mechanisms to identify slow accesses (NUMA systems unmap
memory to cause page faults, but this is too slow for LMPs) ... a
simple solution is to use performance counters to profile accesses."

We model per-server performance counters that the data path feeds on
every planned access: bytes per (requester, extent), split local/remote.
Counters are *sampled* (1-in-N accounting, like real PMU sampling) so
the profiler itself stays cheap, and they age by epoch so the balancer
reacts to recent behaviour rather than all of history.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError


@dataclasses.dataclass
class ExtentStats:
    """Aged access counters for one (requester, extent) pair."""

    local_bytes: float = 0.0
    remote_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.local_bytes + self.remote_bytes

    def age(self, decay: float) -> None:
        self.local_bytes *= decay
        self.remote_bytes *= decay


class AccessProfiler:
    """Sampled, epoch-aged access counters."""

    def __init__(self, sample_period: int = 1, decay: float = 0.5) -> None:
        if sample_period < 1:
            raise ConfigError(f"sample_period must be >= 1, got {sample_period}")
        if not 0.0 <= decay <= 1.0:
            raise ConfigError(f"decay must be in [0, 1], got {decay}")
        self.sample_period = sample_period
        self.decay = decay
        self._counter = 0
        #: (requester_id, extent_index) -> stats
        self._stats: dict[tuple[int, int], ExtentStats] = {}
        self.epoch = 0
        self.samples_taken = 0

    # -- data-path hook -----------------------------------------------------------

    def record(self, requester_id: int, extent_index: int, nbytes: int, remote: bool) -> None:
        """Called by the pool's access planner for every planned access."""
        self._counter += 1
        if self._counter % self.sample_period:
            return
        self.samples_taken += 1
        weight = float(nbytes * self.sample_period)  # unbias the sampling
        stats = self._stats.setdefault((requester_id, extent_index), ExtentStats())
        if remote:
            stats.remote_bytes += weight
        else:
            stats.local_bytes += weight

    # -- epoching ---------------------------------------------------------------

    def advance_epoch(self) -> None:
        """Age every counter; the balancer calls this once per period."""
        self.epoch += 1
        dead: list[tuple[int, int]] = []
        for key, stats in self._stats.items():
            stats.age(self.decay)
            if stats.total_bytes < 1.0:
                dead.append(key)
        for key in dead:
            del self._stats[key]

    # -- queries the balancer asks ------------------------------------------------

    def remote_bytes_by_extent(self) -> dict[int, dict[int, float]]:
        """extent -> {requester -> remote bytes} for extents with remote
        traffic (the migration candidates)."""
        out: dict[int, dict[int, float]] = {}
        for (requester_id, extent_index), stats in self._stats.items():
            if stats.remote_bytes > 0:
                out.setdefault(extent_index, {})[requester_id] = stats.remote_bytes
        return out

    def dominant_consumer(self, extent_index: int) -> tuple[int | None, float]:
        """The requester with the most remote bytes on this extent and
        its share of all remote bytes there."""
        consumers = self.remote_bytes_by_extent().get(extent_index, {})
        if not consumers:
            return None, 0.0
        winner = max(consumers, key=lambda r: (consumers[r], -r))
        total = sum(consumers.values())
        return winner, consumers[winner] / total

    def demand_by_server(self) -> dict[int, float]:
        """Total bytes (local + remote) each requester pushed this epoch —
        the demand signal the sizing policies consume."""
        out: dict[int, float] = {}
        for (requester_id, _extent), stats in self._stats.items():
            out[requester_id] = out.get(requester_id, 0.0) + stats.total_bytes
        return out

    def locality_ratio(self, requester_id: int | None = None) -> float:
        """Fraction of profiled bytes that resolved locally."""
        local = remote = 0.0
        for (rid, _extent), stats in self._stats.items():
            if requester_id is not None and rid != requester_id:
                continue
            local += stats.local_bytes
            remote += stats.remote_bytes
        total = local + remote
        return local / total if total else 1.0
