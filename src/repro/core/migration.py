"""Locality balancing: the policy half of migration (§5).

"Similar to NUMA balancing in multi-socket machines, LMPs need to
periodically migrate data between servers to maximize the number of
local accesses. ... we need ... new policies to decide what data to
migrate."

The balancer runs once per epoch:

1. ask the :class:`~repro.core.profiling.AccessProfiler` which extents
   see remote traffic and who their dominant consumer is,
2. rank candidates by *migration gain*: remote bytes that would become
   local, minus the one-time copy cost (an extent must be re-read
   ``cost_threshold`` times by its dominant consumer before moving pays
   off),
3. respect per-epoch budgets (bytes moved) and destination free space,
4. execute migrations through the pool's two-phase
   :meth:`~repro.core.pool.LogicalMemoryPool.migrate_extent` mechanism.

Because addresses are logical, applications keep running across all of
this; only the global map generation changes.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.pool import LogicalMemoryPool
from repro.core.profiling import AccessProfiler
from repro.errors import CapacityError, ConfigError, MigrationError
from repro.units import gib

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.process import Process


@dataclasses.dataclass(frozen=True)
class MigrationDecision:
    """One planned move."""

    extent_index: int
    src_server_id: int
    dst_server_id: int
    expected_gain_bytes: float


@dataclasses.dataclass
class BalancerReport:
    """What one epoch did."""

    epoch: int
    candidates: int
    migrations: list[MigrationDecision]
    bytes_moved: int
    skipped_no_space: int
    skipped_low_gain: int


class LocalityBalancer:
    """Periodic migration policy over a logical pool."""

    #: installed by repro.obs.Observability: annotates the epoch process
    #: span with migration counts and feeds the metrics registry.
    _obs: _t.ClassVar[_t.Any] = None

    def __init__(
        self,
        pool: LogicalMemoryPool,
        profiler: AccessProfiler,
        gain_threshold: float = 2.0,
        epoch_budget_bytes: int = gib(4),
        min_dominance: float = 0.5,
    ) -> None:
        if gain_threshold <= 0:
            raise ConfigError(f"gain_threshold must be positive, got {gain_threshold}")
        if epoch_budget_bytes <= 0:
            raise ConfigError("epoch_budget_bytes must be positive")
        if not 0.0 <= min_dominance <= 1.0:
            raise ConfigError(f"min_dominance must be in [0, 1], got {min_dominance}")
        self.pool = pool
        self.profiler = profiler
        self.gain_threshold = gain_threshold
        self.epoch_budget_bytes = epoch_budget_bytes
        self.min_dominance = min_dominance
        self.reports: list[BalancerReport] = []
        pool.attach_profiler(profiler)

    # -- planning (pure; unit-testable without a simulator) -------------------------

    def plan(self) -> list[MigrationDecision]:
        """Rank and budget this epoch's migrations."""
        extent_bytes = self.pool.geometry.extent_bytes
        global_map = self.pool.translator.global_map
        free = self.pool.potential_free_by_server()
        decisions: list[MigrationDecision] = []
        skipped_space = skipped_gain = 0

        scored: list[tuple[float, int, int]] = []  # (gain, extent, dst)
        for extent_index, consumers in self.profiler.remote_bytes_by_extent().items():
            dominant, share = self.profiler.dominant_consumer(extent_index)
            if dominant is None or share < self.min_dominance:
                continue
            gain = consumers[dominant]
            # moving pays off only if the hot consumer re-reads the extent
            # enough to amortize the copy
            if gain < self.gain_threshold * extent_bytes:
                skipped_gain += 1
                continue
            scored.append((gain, extent_index, dominant))
        scored.sort(key=lambda t: (-t[0], t[1]))

        budget = self.epoch_budget_bytes
        for gain, extent_index, dst in scored:
            if budget < extent_bytes:
                break
            src = global_map.lookup_extent(extent_index).server_id
            if src == dst:
                continue
            if free.get(dst, 0) < extent_bytes:
                skipped_space += 1
                continue
            free[dst] -= extent_bytes
            free[src] = free.get(src, 0) + extent_bytes
            budget -= extent_bytes
            decisions.append(
                MigrationDecision(
                    extent_index=extent_index,
                    src_server_id=src,
                    dst_server_id=dst,
                    expected_gain_bytes=gain,
                )
            )

        self._last_skips = (skipped_space, skipped_gain)
        return decisions

    # -- execution ----------------------------------------------------------------

    def run_epoch(self) -> "Process":
        """Plan, execute the moves, and age the profiler; the process
        returns the epoch's :class:`BalancerReport`."""
        return self.pool.engine.process(self._epoch_body(), name="balancer.epoch")

    def _epoch_body(self):
        decisions = self.plan()
        skipped_space, skipped_gain = self._last_skips
        moved = 0
        for decision in decisions:
            yield self.pool.migrate_extent(
                decision.extent_index, decision.dst_server_id
            )
            moved += self.pool.geometry.extent_bytes
        candidates = len(self.profiler.remote_bytes_by_extent())
        self.profiler.advance_epoch()
        report = BalancerReport(
            epoch=self.profiler.epoch,
            candidates=candidates,
            migrations=decisions,
            bytes_moved=moved,
            skipped_no_space=skipped_space,
            skipped_low_gain=skipped_gain,
        )
        self.reports.append(report)
        obs = LocalityBalancer._obs
        if obs is not None:
            obs.epoch_done(report)
        return report

    @property
    def total_bytes_moved(self) -> int:
        return sum(r.bytes_moved for r in self.reports)


@dataclasses.dataclass(frozen=True)
class CompactionReport:
    """Outcome of one arena compaction pass.

    ``moves`` maps each relocated block's old offset to its new one;
    callers holding raw offsets across the pass must re-resolve through
    it (a stale offset raises
    :class:`~repro.errors.StaleHandleError` on its next use).
    """

    blocks_moved: int
    bytes_moved: int
    moves: dict[int, int]
    fragmentation_before: float
    fragmentation_after: float
    largest_hole_before: int
    largest_hole_after: int
    #: honest copy cost: bytes_moved at local-copy bandwidth, charged to
    #: the simulation clock by the caller (the gauntlet's DES replay
    #: yields a timeout for exactly this long)
    cost_ns: int


class ArenaCompactor:
    """Slide live blocks left to close holes in a shared-pool arena.

    The policy half is a single threshold: compact when external
    fragmentation exceeds it.  The mechanism reuses the allocator's own
    ``relocate()`` (free + lowest-fit re-allocate), so the sanitizers
    observe every move, and the cost model is the same
    bytes-over-bandwidth accounting the extent-migration paths use —
    compaction is never free.
    """

    def __init__(
        self,
        threshold: float = 0.5,
        copy_bytes_per_ns: float = 8.0,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ConfigError(f"threshold must be in (0, 1), got {threshold}")
        if copy_bytes_per_ns <= 0:
            raise ConfigError(
                f"copy_bytes_per_ns must be positive, got {copy_bytes_per_ns}"
            )
        self.threshold = threshold
        self.copy_bytes_per_ns = copy_bytes_per_ns
        self.reports: list[CompactionReport] = []

    def should_compact(self, allocator: _t.Any) -> bool:
        """True when *allocator* can relocate and is past the threshold."""
        return bool(
            getattr(allocator, "supports_compaction", False)
            and allocator.fragmentation() > self.threshold
        )

    def compact(self, allocator: _t.Any) -> CompactionReport:
        """Relocate every live block, lowest first, into the lowest hole.

        Ascending order makes each slide monotone leftward, so one pass
        reaches the fully-compacted layout (all live blocks packed low,
        free space one hole) and terminates.
        """
        frag_before = allocator.fragmentation()
        hole_before = allocator.largest_hole
        moves: dict[int, int] = {}
        bytes_moved = 0
        for block in allocator.live_allocations():
            granted = allocator.relocate(block)
            if granted.offset != block.offset:
                moves[block.offset] = granted.offset
                bytes_moved += block.size
        report = CompactionReport(
            blocks_moved=len(moves),
            bytes_moved=bytes_moved,
            moves=moves,
            fragmentation_before=frag_before,
            fragmentation_after=allocator.fragmentation(),
            largest_hole_before=hole_before,
            largest_hole_after=allocator.largest_hole,
            cost_ns=int(bytes_moved / self.copy_bytes_per_ns),
        )
        self.reports.append(report)
        return report

    @property
    def total_bytes_moved(self) -> int:
        return sum(r.bytes_moved for r in self.reports)

    @property
    def total_cost_ns(self) -> int:
        return sum(r.cost_ns for r in self.reports)


@dataclasses.dataclass(frozen=True)
class RebalanceReport:
    """Outcome of one capacity-rebalancing pass."""

    moves: int
    bytes_moved: int
    imbalance_before: float
    imbalance_after: float


class CapacityBalancer:
    """Even out per-server shared usage.

    LocalFirst placement deliberately concentrates data near its
    allocator; over time that can exhaust one server's shared region
    while others idle — which blocks future local-first allocations and
    concentrates fabric traffic.  This balancer moves the *coldest*
    extents from the most-loaded servers to the least-loaded until the
    max/mean usage ratio drops under ``tolerance``.

    It deliberately moves cold data: hot data's placement is the
    locality balancer's job, and moving it would fight that policy.
    """

    def __init__(
        self,
        pool: LogicalMemoryPool,
        profiler: AccessProfiler | None = None,
        tolerance: float = 1.25,
        max_moves: int = 64,
    ) -> None:
        if tolerance < 1.0:
            raise ConfigError(f"tolerance must be >= 1.0, got {tolerance}")
        if max_moves < 1:
            raise ConfigError(f"max_moves must be >= 1, got {max_moves}")
        self.pool = pool
        self.profiler = profiler
        self.tolerance = tolerance
        self.max_moves = max_moves
        self.reports: list[RebalanceReport] = []

    def _usage(self) -> dict[int, int]:
        return {
            sid: region.shared_used_bytes
            for sid, region in self.pool.regions.items()
            if self.pool.deployment.server(sid).alive
        }

    @staticmethod
    def _imbalance(usage: dict[int, int]) -> float:
        if not usage or sum(usage.values()) == 0:
            return 1.0
        mean = sum(usage.values()) / len(usage)
        return max(usage.values()) / mean if mean else 1.0

    def _extent_heat(self, extent_index: int) -> float:
        if self.profiler is None:
            return 0.0
        return sum(
            stats.total_bytes
            for (_req, extent), stats in self.profiler._stats.items()
            if extent == extent_index
        )

    def plan(self) -> list[tuple[int, int, int]]:
        """(extent, src, dst) moves that bring usage within tolerance."""
        usage = self._usage()
        if self._imbalance(usage) <= self.tolerance:
            return []
        extent_bytes = self.pool.geometry.extent_bytes
        global_map = self.pool.translator.global_map
        potential = self.pool.potential_free_by_server()
        moves: list[tuple[int, int, int]] = []
        # coldest extents of the hottest server, repeatedly
        for _step in range(self.max_moves):
            if self._imbalance(usage) <= self.tolerance:
                break
            src = max(usage, key=lambda sid: (usage[sid], sid))
            dst = min(usage, key=lambda sid: (usage[sid], -sid))
            if src == dst or potential.get(dst, 0) < extent_bytes:
                break
            candidates = [
                e
                for e in self.pool._extent_frames
                if global_map.lookup_extent(e).server_id == src
                and not any(move[0] == e for move in moves)
            ]
            if not candidates:
                break
            victim = min(candidates, key=lambda e: (self._extent_heat(e), e))
            moves.append((victim, src, dst))
            usage[src] -= extent_bytes
            usage[dst] += extent_bytes
            potential[dst] -= extent_bytes
        return moves

    def rebalance(self) -> "Process":
        """Execute the plan; the process returns a :class:`RebalanceReport`."""
        return self.pool.engine.process(self._rebalance_body(), name="capacity.rebalance")

    def _rebalance_body(self):
        before = self._imbalance(self._usage())
        moves = self.plan()
        moved_bytes = 0
        for extent_index, _src, dst in moves:
            yield self.pool.migrate_extent(extent_index, dst)
            moved_bytes += self.pool.geometry.extent_bytes
        report = RebalanceReport(
            moves=len(moves),
            bytes_moved=moved_bytes,
            imbalance_before=before,
            imbalance_after=self._imbalance(self._usage()),
        )
        self.reports.append(report)
        return report


@dataclasses.dataclass(frozen=True)
class ReclaimReport:
    """Outcome of one private-memory reclaim."""

    server_id: int
    requested_bytes: int
    reclaimed_bytes: int
    extents_evacuated: int
    bytes_evacuated: int
    #: bytes moved *within* the server compacting kept extents out of
    #: the reclaimed range — copies the transport ledger also sees
    bytes_relocated: int = 0

    @property
    def satisfied(self) -> bool:
        return self.reclaimed_bytes >= self.requested_bytes


class PressureEvictor:
    """Give a server its private memory back (§5).

    "Oversizing the shared regions can negatively affect performance of
    local workloads if the local memory is monopolized by remote
    servers."  When local (private) demand grows, this evictor shrinks
    the server's shared region by *nbytes*: free frames shrink for
    free; occupied frames force their extents to be evacuated —
    coldest first, per the profiler — to the servers with the most
    room.  Data stays addressable throughout (migration preserves
    logical addresses).
    """

    def __init__(self, pool: LogicalMemoryPool, profiler: AccessProfiler | None = None) -> None:
        self.pool = pool
        self.profiler = profiler
        self.reports: list[ReclaimReport] = []

    def _extent_heat(self, extent_index: int) -> float:
        if self.profiler is None:
            return 0.0
        total = 0.0
        for (requester, extent), stats in self.profiler._stats.items():
            if extent == extent_index:
                total += stats.total_bytes
        return total

    def _owned_extents(self, server_id: int) -> list[int]:
        global_map = self.pool.translator.global_map
        return [
            extent_index
            for extent_index in self.pool._extent_frames
            if global_map.lookup_extent(extent_index).server_id == server_id
        ]

    def plan(self, server_id: int, nbytes: int) -> tuple[list[int], list[int]]:
        """(keep_locally, evict_remotely) extent lists for a reclaim.

        After the shrink the server holds ``(shared - nbytes)`` of
        shared memory; the hottest extents that still fit stay local
        (relocated out of the reclaimed range if needed), the coldest
        remainder is evacuated to other servers.
        """
        region = self.pool.regions[server_id]
        extent_bytes = self.pool.geometry.extent_bytes
        page = region.page_bytes
        target = min(-(-nbytes // page) * page, region.shared_bytes)
        slots_after = (region.shared_bytes - target) // extent_bytes
        ranked = sorted(
            self._owned_extents(server_id),
            key=lambda e: (-self._extent_heat(e), e),  # hottest first
        )
        keep = ranked[: max(0, slots_after)]
        evict = ranked[max(0, slots_after):]
        evict.sort(key=lambda e: (self._extent_heat(e), e))  # coldest leave first
        return keep, evict

    def reclaim(self, server_id: int, nbytes: int) -> "Process":
        """Shrink *server_id*'s shared region by up to *nbytes*; the
        process returns a :class:`ReclaimReport`."""
        return self.pool.engine.process(
            self._reclaim_body(server_id, nbytes), name=f"reclaim.s{server_id}"
        )

    def _reclaim_body(self, server_id: int, nbytes: int):
        region = self.pool.regions[server_id]
        page = region.page_bytes
        target = min(-(-nbytes // page) * page, region.shared_bytes)
        extent_bytes = self.pool.geometry.extent_bytes
        keep, evict = self.plan(server_id, nbytes)

        # evacuate the cold overflow to wherever has the most room
        evacuated = 0
        moved_extents = 0
        for extent_index in evict:
            free_elsewhere = {
                sid: free
                for sid, free in self.pool.potential_free_by_server().items()
                if sid != server_id
            }
            dst = max(
                free_elsewhere, key=lambda sid: (free_elsewhere[sid], -sid), default=None
            )
            if dst is None or free_elsewhere[dst] < extent_bytes:
                break  # the cluster is full; reclaim what free frames allow
            try:
                moved = yield self.pool.migrate_extent(extent_index, dst)
            except (MigrationError, CapacityError):
                continue  # dst crashed or lost its room mid-flight; repick
            if moved:  # 0 when the extent was freed mid-migration
                moved_extents += 1
                evacuated += moved

        # compact kept extents out of the reclaimed range (local copies)
        relocated = 0
        blockers = set(region.frames_blocking_shrink(target))
        if blockers:
            for extent_index in keep:
                frames = self.pool._extent_frames.get(extent_index, [])
                if not blockers.intersection(frames):
                    continue
                if region.shared_free_bytes < extent_bytes:
                    break  # nowhere to compact to; reclaim stays partial
                try:
                    relocated += yield self.pool.relocate_extent_locally(extent_index)
                except CapacityError:
                    break  # frames vanished between the check and the move

        before = region.shared_bytes
        region.set_shared_target(region.shared_bytes - target)
        reclaimed = before - region.shared_bytes
        report = ReclaimReport(
            server_id=server_id,
            requested_bytes=nbytes,
            reclaimed_bytes=reclaimed,
            extents_evacuated=moved_extents,
            bytes_evacuated=evacuated,
            bytes_relocated=relocated,
        )
        self.reports.append(report)
        return report
