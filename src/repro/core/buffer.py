"""Migration-stable buffer handles.

A buffer is a contiguous range of *logical* addresses.  Because the
addressing scheme translates logical -> physical in two steps (§5),
"migrating a buffer should not corrupt ... pointers" (§1): handles and
any aliases of them stay valid across migration; only the global map's
extent ownership changes underneath.
"""

from __future__ import annotations

import dataclasses

from repro.errors import AddressError
from repro.mem.layout import GlobalAddress, PageGeometry


@dataclasses.dataclass
class Buffer:
    """A handle to an allocated range of the pool's global address space."""

    base: GlobalAddress
    size: int
    geometry: PageGeometry
    name: str = ""
    freed: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise AddressError(f"buffer size must be positive, got {self.size}")
        if self.base.value % self.geometry.extent_bytes != 0:
            raise AddressError("buffers are extent-aligned by construction")

    # -- geometry ------------------------------------------------------------

    @property
    def end(self) -> int:
        return self.base.value + self.size

    def address_of(self, offset: int) -> GlobalAddress:
        """Logical address of byte *offset* within the buffer."""
        self._check_range(offset, 1)
        return self.base + offset

    def extent_indices(self) -> range:
        """Every extent this buffer's bytes touch."""
        return self.geometry.extents_covering(self.base, self.size)

    def page_indices(self) -> range:
        """Every page this buffer's bytes touch."""
        return self.geometry.pages_covering(self.base, self.size)

    def _check_range(self, offset: int, length: int) -> None:
        if self.freed:
            raise AddressError(f"buffer {self.name or hex(self.base.value)} was freed")
        if offset < 0 or length < 0 or offset + length > self.size:
            raise AddressError(
                f"range [{offset}, {offset + length}) outside buffer of {self.size} bytes"
            )

    def slice_addresses(self, offset: int, length: int) -> tuple[GlobalAddress, int]:
        """(address, length) for a validated sub-range — what the data
        path consumes."""
        self._check_range(offset, max(length, 1) if length else 0)
        return self.base + offset, length

    def shards(self, parts: int) -> list[tuple[int, int]]:
        """Split the buffer into *parts* near-equal (offset, length)
        shards — how the microbenchmark divides the vector over cores."""
        if parts <= 0:
            raise AddressError(f"parts must be positive, got {parts}")
        quotient, remainder = divmod(self.size, parts)
        out: list[tuple[int, int]] = []
        offset = 0
        for i in range(parts):
            length = quotient + (1 if i < remainder else 0)
            out.append((offset, length))
            offset += length
        return out

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or f"0x{self.base.value:x}"
        state = " FREED" if self.freed else ""
        return f"<Buffer {label} {self.size}B{state}>"
