"""The two-step address translation scheme (§5 "Address translation").

Step 1 — *coarse, global*: the requester's cached copy of the global
map resolves the extent to its owning server.  Step 2 — *fine, local*:
the owner's page table resolves the page within the extent to a DRAM
frame.

A traditional flat directory "is too inefficient for our use, because
all servers need access to the directory when translating addresses";
the two-step split keeps step 1 in a small, replicable structure and
step 2 entirely owner-local.

Staleness: migration bumps the extent's generation in the authoritative
map.  A requester using a stale cached entry is rejected by the (former)
owner, drops the entry, and retries — we count those retries, and the
migration tests assert they are bounded (one per migration per
requester).
"""

from __future__ import annotations

import dataclasses

from repro.errors import AddressError
from repro.mem.global_map import GlobalMap, MapCache
from repro.mem.layout import GlobalAddress, PageGeometry
from repro.mem.page_table import PageTable


@dataclasses.dataclass(frozen=True)
class Translation:
    """The outcome of translating one logical address."""

    address: GlobalAddress
    server_id: int
    dram_offset: int
    remote: bool
    stale_retries: int


class AddressTranslator:
    """Shared translation fabric: one authoritative map, per-server
    caches and page tables."""

    MAX_RETRIES = 4

    def __init__(self, geometry: PageGeometry) -> None:
        self.geometry = geometry
        self.global_map = GlobalMap(geometry)
        self.page_tables: dict[int, PageTable] = {}
        self.caches: dict[int, MapCache] = {}
        self.translations = 0
        self.total_stale_retries = 0

    def register_server(self, server_id: int) -> None:
        if server_id in self.page_tables:
            raise AddressError(f"server {server_id} already registered")
        self.page_tables[server_id] = PageTable(server_id, self.geometry)
        self.caches[server_id] = MapCache(self.global_map)

    def page_table(self, server_id: int) -> PageTable:
        try:
            return self.page_tables[server_id]
        except KeyError:
            raise AddressError(f"server {server_id} not registered") from None

    def cache(self, server_id: int) -> MapCache:
        try:
            return self.caches[server_id]
        except KeyError:
            raise AddressError(f"server {server_id} not registered") from None

    # -- the two steps ----------------------------------------------------------

    def translate(
        self,
        requester_id: int,
        addr: GlobalAddress | int,
        write: bool = False,
    ) -> Translation:
        """Resolve *addr* for *requester_id*, retrying past stale cache
        entries the way the real protocol would."""
        addr = GlobalAddress(int(addr))
        cache = self.cache(requester_id)
        retries = 0
        while True:
            entry = cache.lookup(addr)  # step 1 (cached coarse map)
            if cache.is_current(entry):
                break
            # The owner named by the stale entry rejects the access; we
            # drop the entry and re-fetch.
            cache.note_stale(entry.extent_index)
            retries += 1
            if retries > self.MAX_RETRIES:
                raise AddressError(
                    f"address {int(addr):#x}: translation livelock after "
                    f"{retries} stale retries"
                )
        owner = entry.server_id
        table = self.page_table(owner)  # step 2 (owner-local fine map)
        page = self.geometry.page_index(addr)
        offset = self.geometry.page_offset(addr)
        remote = owner != requester_id
        dram_offset = table.translate(page, offset, write=write, remote=remote)
        self.translations += 1
        self.total_stale_retries += retries
        return Translation(
            address=addr,
            server_id=owner,
            dram_offset=dram_offset,
            remote=remote,
            stale_retries=retries,
        )

    def owner_of(self, addr: GlobalAddress | int) -> int:
        """Authoritative owner (no cache) — used by control-plane code."""
        return self.global_map.owner(GlobalAddress(int(addr)))

    def segments_by_owner(
        self, addr: GlobalAddress | int, size: int
    ) -> list[tuple[int, int, int]]:
        """Split [addr, addr+size) into per-owner runs.

        Returns (owner_server_id, start_address, length) with consecutive
        same-owner extents merged — the shape the streaming data path
        wants (one :class:`~repro.hw.cpu.AccessSegment` per run).
        """
        if size <= 0:
            return []
        start = int(addr)
        end = start + size
        out: list[tuple[int, int, int]] = []
        pos = start
        while pos < end:
            extent = self.geometry.extent_index(pos)
            owner = self.global_map.lookup_extent(extent).server_id
            run_end = min((extent + 1) * self.geometry.extent_bytes, end)
            # merge forward while ownership continues
            while run_end < end:
                next_extent = self.geometry.extent_index(run_end)
                if self.global_map.lookup_extent(next_extent).server_id != owner:
                    break
                run_end = min((next_extent + 1) * self.geometry.extent_bytes, end)
            out.append((owner, pos, run_end - pos))
            pos = run_end
        return out
