"""Per-server private/shared/coherent region management.

"We logically partition each server's memory into private and shared
regions, where the union of all shared regions constitute the
disaggregated memory" (§1).  The split is *dynamic*: "the division of
private and shared regions on each server can vary over time and per
server" (§1) — that flexibility is Benefit 4 and the reason the 96 GB
vector of Figure 5 runs at all.

Layout within one server's DRAM (offsets grow left to right)::

    0 ............................................ capacity
    [ private ....... ][ coherent ][ shared ............ ]
                       ^ boundary moves as the split flexes

The shared region hands out page *frames* (not necessarily contiguous —
the page table, not physical adjacency, provides contiguity).  Shrinking
the shared region requires the frames beyond the new boundary to be
free; occupied ones must be migrated away first, which is exactly the
coupling between the sizing policy and the locality balancer that §5
describes.
"""

from __future__ import annotations

import typing as _t
from heapq import heappop, heappush

from repro.errors import AllocationError, CapacityError, ConfigError
from repro.mem.layout import PageGeometry, Region, RegionKind

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.server import Server


class RegionManager:
    """Owns one server's DRAM split and its shared-region frame pool."""

    def __init__(
        self,
        server: "Server",
        geometry: PageGeometry,
        shared_bytes: int,
        coherent_bytes: int = 0,
    ) -> None:
        page = geometry.page_bytes
        # Work within the page-aligned prefix of the DRAM; the sub-page
        # tail (capacity % page) stays permanently private.
        capacity = server.dram.capacity_bytes // page * page
        shared_bytes = min(shared_bytes, capacity) // page * page
        coherent_bytes = coherent_bytes // page * page
        if shared_bytes + coherent_bytes > capacity:
            raise CapacityError(
                f"shared {shared_bytes} + coherent {coherent_bytes} exceed "
                f"server DRAM {capacity}"
            )
        self.server = server
        self.geometry = geometry
        self.capacity_bytes = capacity
        self.coherent_bytes = coherent_bytes
        #: DRAM offset where the shared region starts (frames >= boundary)
        self._boundary = capacity - shared_bytes
        self._coherent_start = self._boundary - coherent_bytes
        #: free frames in the shared region, as DRAM offsets
        self._free_frames: set[int] = set(
            range(self._boundary, capacity, page)
        )
        #: lazy-deletion min-heap over the free set: every free frame has
        #: at least one copy here, and stale copies (frames since taken)
        #: are skipped at pop time.  Lets the hot lowest-first allocation
        #: run in O(count log n) instead of sorting the whole free set.
        #: An ascending range is already heap-ordered, so no heapify.
        self._free_heap: list[int] = list(range(self._boundary, capacity, page))
        self._used_frames: set[int] = set()
        self.resize_events = 0
        #: the re-flex seam (§4.5).  True (default) keeps the paper's
        #: demand-driven behavior: allocation flexes private memory into
        #: the shared region implicitly (``ensure_shared_free``), and
        #: placement sees that headroom through ``growable_bytes``.
        #: False freezes the split: only the *explicit* resize API
        #: (``grow_shared`` / ``shrink_shared`` / ``set_shared_target``)
        #: moves the boundary — a static split, or one governed by an
        #: external control loop such as ``repro.scale``'s autoscaler.
        self.flex_on_demand = True

    # -- geometry ------------------------------------------------------------

    @property
    def page_bytes(self) -> int:
        return self.geometry.page_bytes

    @property
    def shared_bytes(self) -> int:
        return self.capacity_bytes - self._boundary

    @property
    def private_bytes(self) -> int:
        return self._coherent_start

    @property
    def shared_free_bytes(self) -> int:
        return len(self._free_frames) * self.page_bytes

    @property
    def shared_used_bytes(self) -> int:
        return len(self._used_frames) * self.page_bytes

    @property
    def shared_utilization(self) -> float:
        """Used fraction of the shared region (1.0 when there is no
        shared region at all: a zero-byte split is maximally pressured)."""
        shared = self.shared_bytes
        return self.shared_used_bytes / shared if shared else 1.0

    def regions(self) -> list[Region]:
        """The current split as region descriptors."""
        out = [
            Region(self.server.server_id, RegionKind.PRIVATE, 0, self.private_bytes)
        ]
        if self.coherent_bytes:
            out.append(
                Region(
                    self.server.server_id,
                    RegionKind.COHERENT,
                    self._coherent_start,
                    self.coherent_bytes,
                )
            )
        out.append(
            Region(
                self.server.server_id,
                RegionKind.SHARED,
                self._boundary,
                self.shared_bytes,
            )
        )
        return out

    # -- frame pool --------------------------------------------------------------

    def allocate_frames(self, count: int, highest: bool = False) -> list[int]:
        """Take *count* free frames (lowest offsets first, deterministic).

        ``highest=True`` takes the top of the region instead — used by
        local compaction to move pages *away* from the boundary a
        shrink is about to reclaim."""
        if count < 0:
            raise AllocationError(f"negative frame count {count}")
        if count > len(self._free_frames):
            raise AllocationError(
                f"server {self.server.server_id}: need {count} frames, "
                f"{len(self._free_frames)} free"
            )
        if highest:
            # rare (compaction only): the heap is min-ordered, fall back
            # to a sort; stale heap copies are skipped at later pops
            frames = sorted(self._free_frames, reverse=True)[:count]
            for frame in frames:
                self._free_frames.discard(frame)
                self._used_frames.add(frame)
            return frames
        free = self._free_frames
        used = self._used_frames
        heap = self._free_heap
        frames = []
        while len(frames) < count:
            frame = heappop(heap)
            if frame in free:  # stale copies pop through and vanish here
                free.discard(frame)
                used.add(frame)
                frames.append(frame)
        return frames

    def free_frames(self, frames: _t.Iterable[int]) -> None:
        for frame in frames:
            if frame not in self._used_frames:
                raise AllocationError(
                    f"server {self.server.server_id}: frame {frame} not in use"
                )
            self._used_frames.discard(frame)
            self._free_frames.add(frame)
            heappush(self._free_heap, frame)

    # -- dynamic resizing (§4.5) ---------------------------------------------------

    def grow_shared(self, nbytes: int) -> None:
        """Move the boundary down, converting private memory to shared."""
        page = self.page_bytes
        if nbytes % page:
            raise ConfigError(f"grow must be page-aligned, got {nbytes}")
        if nbytes > self.private_bytes:
            raise CapacityError(
                f"cannot grow shared by {nbytes}: only {self.private_bytes} private"
            )
        new_boundary = self._boundary - nbytes
        for frame in range(new_boundary, self._boundary, page):
            self._free_frames.add(frame)
            heappush(self._free_heap, frame)
        self._boundary = new_boundary
        self._coherent_start -= nbytes
        self.resize_events += 1

    def shrink_shared(self, nbytes: int) -> None:
        """Move the boundary up, returning memory to private use.

        Fails unless every frame being reclaimed is free — callers must
        evacuate first (see :meth:`frames_blocking_shrink`).
        """
        page = self.page_bytes
        if nbytes % page:
            raise ConfigError(f"shrink must be page-aligned, got {nbytes}")
        if nbytes > self.shared_bytes:
            raise CapacityError(
                f"cannot shrink shared by {nbytes}: only {self.shared_bytes} shared"
            )
        new_boundary = self._boundary + nbytes
        blockers = [
            f for f in range(self._boundary, new_boundary, page) if f in self._used_frames
        ]
        if blockers:
            raise CapacityError(
                f"shrink blocked by {len(blockers)} occupied frames; migrate "
                "them away first"
            )
        for frame in range(self._boundary, new_boundary, page):
            self._free_frames.discard(frame)
        self._boundary = new_boundary
        self._coherent_start += nbytes
        self.resize_events += 1

    def frames_blocking_shrink(self, nbytes: int) -> list[int]:
        """Occupied frames that must be evacuated before a shrink."""
        page = self.page_bytes
        new_boundary = self._boundary + min(nbytes, self.shared_bytes)
        return sorted(
            f for f in range(self._boundary, new_boundary, page) if f in self._used_frames
        )

    def growable_bytes(self) -> int:
        """Private memory that could still be flexed into the pool.

        Zero when ``flex_on_demand`` is off: a frozen split offers the
        allocator only what is actually free in the shared region."""
        if not self.flex_on_demand:
            return 0
        return self.private_bytes // self.page_bytes * self.page_bytes

    def flexable_bytes(self) -> int:
        """True private headroom, regardless of ``flex_on_demand`` —
        what an explicit re-flex (autoscaler) could still convert."""
        return self.private_bytes // self.page_bytes * self.page_bytes

    def ensure_shared_free(self, nbytes: int) -> None:
        """Grow the shared region (if needed and possible) until at least
        *nbytes* of shared memory is free — the demand side of the
        paper's dynamic private/shared ratio."""
        deficit = nbytes - self.shared_free_bytes
        if deficit <= 0:
            return
        if not self.flex_on_demand:
            raise CapacityError(
                f"server {self.server.server_id}: shared region is frozen "
                f"(flex_on_demand off) with only {self.shared_free_bytes} "
                f"bytes free; {nbytes} needed"
            )
        page = self.page_bytes
        grow = -(-deficit // page) * page
        if grow > self.private_bytes:
            raise CapacityError(
                f"server {self.server.server_id}: cannot free {nbytes} shared "
                f"bytes (private has only {self.private_bytes})"
            )
        self.grow_shared(grow)

    def set_shared_target(self, target_bytes: int) -> int:
        """Best-effort resize toward *target_bytes* of shared memory.

        Returns the achieved shared size.  Shrinks stop at the first
        occupied frame (evacuation is the balancer's job, not ours).
        """
        page = self.page_bytes
        target = (target_bytes // page) * page
        current = self.shared_bytes
        if target > current:
            grow = min(target - current, (self.private_bytes // page) * page)
            if grow:
                self.grow_shared(grow)
        elif target < current:
            want = current - target
            page_count = want // page
            achievable = 0
            for i in range(page_count):
                frame = self._boundary + i * page
                if frame in self._used_frames:
                    break
                achievable += page
            if achievable:
                self.shrink_shared(achievable)
        return self.shared_bytes
