"""The paper's contribution: the logical memory pool and its runtime.

Layering (bottom-up):

* :mod:`repro.core.regions` — each server's private/shared/coherent
  split, dynamically resizable (§3.2, §4.5),
* :mod:`repro.core.addressing` — the two-step translation scheme (§5),
* :mod:`repro.core.buffer` — migration-stable buffer handles,
* :mod:`repro.core.pool` — :class:`LogicalMemoryPool` and the
  :class:`PhysicalMemoryPool` baselines (§4.1),
* :mod:`repro.core.profiling` / :mod:`repro.core.migration` — access
  profiling and locality balancing (§5),
* :mod:`repro.core.sizing` — shared-region sizing policies (§5),
* :mod:`repro.core.compute` — near-memory compute shipping (§4.4),
* :mod:`repro.core.coherence` — the small coherent region: directory
  protocol, inclusive snoop filter with back-invalidation, and
  synchronization primitives built on it (§3.2, §5),
* :mod:`repro.core.failures` — crash handling: replication, erasure
  coding, failure reporting (§5),
* :mod:`repro.core.runtime` / :mod:`repro.core.api` — the per-server
  runtime and the application library (§3.2).
"""

from repro.core.api import LmpSession
from repro.core.buffer import Buffer
from repro.core.pool import (
    LogicalMemoryPool,
    MemoryPool,
    PhysicalMemoryPool,
    pool_for,
)
from repro.core.runtime import LmpRuntime

__all__ = [
    "Buffer",
    "LmpRuntime",
    "LmpSession",
    "LogicalMemoryPool",
    "MemoryPool",
    "PhysicalMemoryPool",
    "pool_for",
]
