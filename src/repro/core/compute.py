"""Near-memory computing (§4.4 Benefit 3).

"If we distribute the sum across LMP servers, then each server could
access different parts of the vector locally.  Thus, LMPs can use
computation shipping to further enhance performance through near-memory
computing so that all memory accesses are local. ... In contrast, with
physical pools, computation shipping either is infeasible or requires
additional processing hardware."

Two entry points:

* :meth:`ComputeRuntime.shipped_scan` — the performance path: every
  server streams *its own* extents of a buffer with all of its cores
  concurrently; only the per-server partial results (one cache line
  each) cross the fabric.  This is the experiment the paper describes
  but does not show; our Benefit-3 bench shows it.
* :meth:`ComputeRuntime.map_reduce` — the functional path: a mapper
  runs against each owner's real bytes locally, partials are shipped to
  the requester and reduced.  Used by the examples and correctness
  tests (e.g. the shipped sum equals the single-server sum).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.buffer import Buffer
from repro.core.pool import LogicalMemoryPool
from repro.errors import ConfigError, MemoryFailureError
from repro.hw.cpu import AccessSegment
from repro.units import mib

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.process import Process

#: bytes of one shipped partial result (a cache line)
RESULT_BYTES = 64


@dataclasses.dataclass(frozen=True)
class ShippedScanResult:
    """Outcome of one compute-shipped scan."""

    total_bytes: int
    duration_ns: float
    bytes_by_server: dict[int, int]
    result_messages: int
    engine_kind: str = "cpu"
    cpu_core_ns: float = 0.0  # CPU core-time consumed (0 when offloaded)

    @property
    def aggregate_gbps(self) -> float:
        return self.total_bytes / self.duration_ns if self.duration_ns else 0.0


class ComputeRuntime:
    """Ships computation to the servers owning the data."""

    def __init__(self, pool: LogicalMemoryPool) -> None:
        if not isinstance(pool, LogicalMemoryPool):
            raise ConfigError(
                "compute shipping needs a logical pool; physical pools have "
                "no processors at the memory (the paper's §4.4 point)"
            )
        self.pool = pool
        self.deployment = pool.deployment
        self.engine = pool.engine
        #: server id -> attached Type-2 accelerator (optional)
        self.accelerators: dict[int, _t.Any] = {}

    def attach_accelerator(self, server_id: int, accelerator: _t.Any) -> None:
        """Register a near-memory accelerator on one server (the "GPUs
        and other accelerators" of §1)."""
        self.deployment.server(server_id)  # validates the id
        self.accelerators[server_id] = accelerator

    # -- shard discovery --------------------------------------------------------

    def shards_by_owner(self, buffer: Buffer) -> dict[int, int]:
        """owner server -> bytes of *buffer* it holds locally."""
        out: dict[int, int] = {}
        for owner, _start, length in self.pool.translator.segments_by_owner(
            buffer.base, buffer.size
        ):
            out[owner] = out.get(owner, 0) + length
        return out

    # -- performance path --------------------------------------------------------

    def shipped_scan(
        self,
        buffer: Buffer,
        requester_id: int = 0,
        chunk_bytes: int = mib(32),
        use_accelerators: bool = False,
    ) -> "Process":
        """Scan the whole buffer with computation shipped to every owner;
        the process returns a :class:`ShippedScanResult`.

        ``use_accelerators=True`` runs each shard on the owner's
        registered Type-2 accelerator instead of its CPU cores — same
        DRAM-bound bandwidth, zero CPU core-time consumed."""
        return self.engine.process(
            self._shipped_scan_body(buffer, requester_id, chunk_bytes, use_accelerators),
            name="compute.shipped_scan",
        )

    def _shipped_scan_body(
        self, buffer: Buffer, requester_id: int, chunk_bytes: int, use_accelerators: bool
    ):
        started = self.engine.now
        by_owner = self.shards_by_owner(buffer)
        all_procs = []
        cpu_cores_used: dict[int, int] = {}
        for owner, nbytes in sorted(by_owner.items()):
            server = self.deployment.server(owner)
            if not server.alive:
                raise MemoryFailureError(
                    f"shard owner {server.name} is down", server_id=owner
                )
            route = self.pool.switch.read_route(server.name, server.name)
            if use_accelerators:
                accelerator = self.accelerators.get(owner)
                if accelerator is None:
                    raise ConfigError(
                        f"server {owner} has no registered accelerator; "
                        "attach one or ship to CPUs"
                    )
                all_procs.append(accelerator.scan(route.path, nbytes))
                continue
            cores = server.socket.cores
            for core in cores:
                core.chunk_bytes = chunk_bytes
            per_core = max(1, nbytes // len(cores))
            work: list[list[AccessSegment]] = []
            assigned = 0
            for i, _core in enumerate(cores):
                take = per_core if i < len(cores) - 1 else nbytes - assigned
                if take <= 0:
                    break
                work.append(
                    [AccessSegment(path=route.path, nbytes=take, latency_fn=route.latency_fn, label="shipped")]
                )
                assigned += take
            cpu_cores_used[owner] = len(work)
            all_procs.extend(server.socket.parallel_stream(work))
        yield self.engine.all_of(all_procs)

        # Ship one cache-line partial result per remote owner.
        requester = self.deployment.server(requester_id)
        messages = 0
        for owner in sorted(by_owner):
            if owner == requester_id:
                continue
            owner_server = self.deployment.server(owner)
            route = self.pool.switch.read_route(requester.name, owner_server.name)
            yield self.engine.timeout(route.loaded_latency())
            yield self.pool.fluid.transfer(route.path, RESULT_BYTES, tag="partial-result")
            messages += 1
        duration = self.engine.now - started
        cpu_core_ns = 0.0
        if not use_accelerators:
            cpu_core_ns = duration * sum(cpu_cores_used.values())
        return ShippedScanResult(
            total_bytes=buffer.size,
            duration_ns=duration,
            bytes_by_server=by_owner,
            result_messages=messages,
            engine_kind="accelerator" if use_accelerators else "cpu",
            cpu_core_ns=cpu_core_ns,
        )

    # -- functional path ---------------------------------------------------------

    def map_reduce(
        self,
        buffer: Buffer,
        mapper: _t.Callable[[bytes], _t.Any],
        reducer: _t.Callable[[_t.Sequence[_t.Any]], _t.Any],
        requester_id: int = 0,
        granule_bytes: int = mib(2),
    ) -> "Process":
        """Apply *mapper* near the data and *reducer* at the requester;
        the process returns the reduced value.

        Every mapper invocation sees one granule of the buffer's real
        bytes, read through the owner's *local* channel (the essence of
        compute shipping: the bulk bytes never cross the fabric)."""
        return self.engine.process(
            self._map_reduce_body(buffer, mapper, reducer, requester_id, granule_bytes),
            name="compute.map_reduce",
        )

    def _map_reduce_body(self, buffer, mapper, reducer, requester_id, granule_bytes):
        partials: list[_t.Any] = []
        transport = self.pool.transport
        for owner, start, length in self.pool.translator.segments_by_owner(
            buffer.base, buffer.size
        ):
            owner_server = self.deployment.server(owner)
            if not owner_server.alive:
                raise MemoryFailureError(
                    f"shard owner {owner_server.name} is down", server_id=owner
                )
            pos = start
            end = start + length
            while pos < end:
                take = min(granule_bytes, end - pos)
                translation = self.pool.translator.translate(owner, pos, write=False)
                data = yield transport.read(
                    owner_server.name, owner_server.name, translation.dram_offset, take
                )
                partials.append(mapper(data))
                pos += take
            # ship the owner's partials' worth of result bytes
            if owner != requester_id:
                requester = self.deployment.server(requester_id)
                route = self.pool.switch.read_route(requester.name, owner_server.name)
                yield self.engine.timeout(route.loaded_latency())
                yield self.pool.fluid.transfer(route.path, RESULT_BYTES, tag="partial-result")
        return reducer(partials)
