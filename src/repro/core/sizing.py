"""Shared-region sizing policies (§5 "Sizing the shared regions").

"Oversizing the shared regions can negatively affect performance of
local workloads if the local memory is monopolized by remote servers.
On the other hand, undersizing the shared region can render the LMP
insufficient for the application needs. ... Finding this balance can be
formulated as a global optimization problem that is solved periodically.
The objective is to maximize the number of local accesses while
prioritizing high-value applications."

Three policies, one interface:

* :class:`StaticSizing` — a fixed shared fraction everywhere (the
  physical pool's rigidity, expressed as an LMP policy; the ablation
  baseline).
* :class:`DemandDrivenSizing` — watermark heuristic: grow a server's
  shared region when pool allocation pressure appears, shrink when the
  pool is underused and local (private) pressure is high.
* :class:`GlobalOptimizerSizing` — the paper's formulation: a linear
  program over (placement x[app, server], shared size s[server]) that
  maximizes value-weighted local access rate; solved with
  ``scipy.optimize.linprog``, with a greedy fallback when scipy's
  solver fails.

The policies are pure planners: they map a demand snapshot to a
:class:`SizingPlan`.  Applying the plan (region resizes + placement)
is the runtime's job.
"""

from __future__ import annotations

import abc
import dataclasses
import typing as _t

import numpy as np
from scipy import optimize

from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class AppDemand:
    """One application's memory demand for the optimizer.

    *home_server* is where its compute runs; *pooled_bytes* is the
    disaggregated working set it needs placed; *access_rate* weights how
    hot that data is (bytes/s or any consistent unit); *value* is the
    business priority the paper says to respect.
    """

    app_id: str
    home_server: int
    pooled_bytes: int
    access_rate: float = 1.0
    value: float = 1.0

    def __post_init__(self) -> None:
        if self.pooled_bytes < 0 or self.access_rate < 0 or self.value < 0:
            raise ConfigError(f"demand {self.app_id}: negative quantities")


@dataclasses.dataclass(frozen=True)
class ServerCapacity:
    """One server's capacity envelope for the optimizer."""

    server_id: int
    dram_bytes: int
    private_floor_bytes: int = 0  # memory that must stay private (OS, local apps)

    def __post_init__(self) -> None:
        if self.private_floor_bytes > self.dram_bytes:
            raise ConfigError(
                f"server {self.server_id}: private floor exceeds DRAM"
            )

    @property
    def max_shared_bytes(self) -> int:
        return self.dram_bytes - self.private_floor_bytes


@dataclasses.dataclass
class SizingPlan:
    """The planner's output."""

    shared_bytes: dict[int, int]
    placement: dict[str, dict[int, int]]  # app -> {server -> bytes}
    satisfied: dict[str, bool]
    objective: float

    def local_fraction(self, demand: AppDemand) -> float:
        placed = self.placement.get(demand.app_id, {})
        total = sum(placed.values())
        if total == 0:
            return 0.0
        return placed.get(demand.home_server, 0) / total

    def total_shared(self) -> int:
        return sum(self.shared_bytes.values())


class SizingPolicy(abc.ABC):
    """Interface: demand snapshot in, plan out."""

    name = "abstract"

    @abc.abstractmethod
    def plan(
        self,
        demands: _t.Sequence[AppDemand],
        capacities: _t.Sequence[ServerCapacity],
    ) -> SizingPlan:
        """Produce shared sizes and a placement for the demands."""


class StaticSizing(SizingPolicy):
    """Fixed shared fraction; placement is local-first greedy.

    With ``shared_fraction`` matching a physical pool's pooled/total
    ratio, this policy reproduces the physical pool's inflexibility —
    the ablation's baseline arm.
    """

    name = "static"

    def __init__(self, shared_fraction: float = 0.5) -> None:
        if not 0.0 <= shared_fraction <= 1.0:
            raise ConfigError(f"shared_fraction must be in [0, 1], got {shared_fraction}")
        self.shared_fraction = shared_fraction

    def plan(
        self,
        demands: _t.Sequence[AppDemand],
        capacities: _t.Sequence[ServerCapacity],
    ) -> SizingPlan:
        shared = {
            cap.server_id: min(
                int(cap.dram_bytes * self.shared_fraction), cap.max_shared_bytes
            )
            for cap in capacities
        }
        return _greedy_place(demands, shared)


class DemandDrivenSizing(SizingPolicy):
    """Watermark heuristic: shared size follows observed demand.

    Each server's shared region is sized to the demand routed at it
    (local apps first), padded by *headroom*, clamped to its envelope.
    Reacts in one step; no global view, so it can strand capacity that
    the optimizer would have found — which is exactly what the ablation
    measures.
    """

    name = "demand-driven"

    def __init__(self, headroom: float = 0.1) -> None:
        if headroom < 0:
            raise ConfigError(f"headroom must be >= 0, got {headroom}")
        self.headroom = headroom

    def plan(
        self,
        demands: _t.Sequence[AppDemand],
        capacities: _t.Sequence[ServerCapacity],
    ) -> SizingPlan:
        max_shared = {cap.server_id: cap.max_shared_bytes for cap in capacities}
        by_server: dict[int, int] = {sid: 0 for sid in max_shared}
        for demand in demands:
            if demand.home_server in by_server:
                by_server[demand.home_server] += demand.pooled_bytes
        total_demand = sum(d.pooled_bytes for d in demands)
        # demand each server can host at home, clamped to its envelope
        local_fit = {sid: min(by_server[sid], max_shared[sid]) for sid in max_shared}
        overflow = total_demand - sum(local_fit.values())
        # waterfill the overflow into the remaining envelopes, evenly
        remaining = {sid: max_shared[sid] - local_fit[sid] for sid in max_shared}
        extra = {sid: 0 for sid in max_shared}
        if overflow > 0:
            order = sorted(remaining, key=lambda s: (remaining[s], s))
            left = overflow
            for i, sid in enumerate(order):
                quota = left // (len(order) - i)
                take = min(remaining[sid], quota)
                extra[sid] = take
                left -= take
            for sid in sorted(order, key=lambda s: -(remaining[s] - extra[s])):
                if left <= 0:
                    break
                take = min(remaining[sid] - extra[sid], left)
                extra[sid] += take
                left -= take
        shared: dict[int, int] = {}
        for cap in capacities:
            sid = cap.server_id
            want = int((local_fit[sid] + extra[sid]) * (1.0 + self.headroom))
            shared[sid] = min(want, cap.max_shared_bytes)
        return _greedy_place(demands, shared)


class GlobalOptimizerSizing(SizingPolicy):
    """The paper's global optimization, as a linear program.

    Variables (all in GiB for conditioning):

    * ``x[a, i]`` — bytes of app *a* placed on server *i*,
    * ``s[i]`` — server *i*'s shared-region size.

    Maximize ``sum_a value_a * rate_a * x[a, home_a] / demand_a``
    (value-weighted local placement) minus a small ``eps * sum_i s[i]``
    term so shared regions are no larger than needed (the
    "monopolized by remote servers" cost).  Subject to::

        sum_i x[a, i] == demand_a          (every app fully placed)
        sum_a x[a, i] <= s[i]              (shared regions hold the data)
        s[i] <= max_shared_i               (private floors respected)
        x, s >= 0
    """

    name = "global-optimizer"

    def __init__(self, shared_cost: float = 1e-4) -> None:
        if shared_cost < 0:
            raise ConfigError(f"shared_cost must be >= 0, got {shared_cost}")
        self.shared_cost = shared_cost

    def plan(
        self,
        demands: _t.Sequence[AppDemand],
        capacities: _t.Sequence[ServerCapacity],
    ) -> SizingPlan:
        if not demands or not capacities:
            return SizingPlan(
                shared_bytes={c.server_id: 0 for c in capacities},
                placement={d.app_id: {} for d in demands},
                satisfied={d.app_id: d.pooled_bytes == 0 for d in demands},
                objective=0.0,
            )
        total_capacity = sum(c.max_shared_bytes for c in capacities)
        total_demand = sum(d.pooled_bytes for d in demands)
        if total_demand > total_capacity:
            # Infeasible as stated; keep the highest-value-density apps.
            demands = _drop_lowest_value(demands, total_capacity)

        gib = float(1 << 30)
        servers = [c.server_id for c in capacities]
        n_apps, n_srv = len(demands), len(servers)
        n_x = n_apps * n_srv
        n_vars = n_x + n_srv

        def xi(a: int, i: int) -> int:
            return a * n_srv + i

        c_vec = np.zeros(n_vars)
        for a, demand in enumerate(demands):
            if demand.pooled_bytes == 0:
                continue
            home = servers.index(demand.home_server) if demand.home_server in servers else None
            if home is not None:
                # minimize negative local value
                c_vec[xi(a, home)] = -(
                    demand.value * demand.access_rate / (demand.pooled_bytes / gib)
                )
        c_vec[n_x:] = self.shared_cost

        a_eq = np.zeros((n_apps, n_vars))
        b_eq = np.zeros(n_apps)
        for a, demand in enumerate(demands):
            for i in range(n_srv):
                a_eq[a, xi(a, i)] = 1.0
            b_eq[a] = demand.pooled_bytes / gib

        a_ub = np.zeros((2 * n_srv, n_vars))
        b_ub = np.zeros(2 * n_srv)
        for i, cap in enumerate(capacities):
            for a in range(n_apps):
                a_ub[i, xi(a, i)] = 1.0
            a_ub[i, n_x + i] = -1.0  # sum_a x[a,i] - s_i <= 0
            b_ub[i] = 0.0
            a_ub[n_srv + i, n_x + i] = 1.0  # s_i <= max_shared
            b_ub[n_srv + i] = cap.max_shared_bytes / gib

        result = optimize.linprog(
            c_vec, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, method="highs"
        )
        if not result.success:
            shared = {c.server_id: c.max_shared_bytes for c in capacities}
            return _greedy_place(demands, shared)

        solution = result.x
        shared_bytes = {
            cap.server_id: int(round(solution[n_x + i] * gib))
            for i, cap in enumerate(capacities)
        }
        placement: dict[str, dict[int, int]] = {}
        satisfied: dict[str, bool] = {}
        for a, demand in enumerate(demands):
            placed = {
                servers[i]: int(round(solution[xi(a, i)] * gib))
                for i in range(n_srv)
                if solution[xi(a, i)] * gib > 1.0
            }
            placement[demand.app_id] = placed
            satisfied[demand.app_id] = (
                sum(placed.values()) >= demand.pooled_bytes * 0.999
            )
        return SizingPlan(
            shared_bytes=shared_bytes,
            placement=placement,
            satisfied=satisfied,
            objective=float(-result.fun),
        )


def _drop_lowest_value(
    demands: _t.Sequence[AppDemand], capacity: int
) -> list[AppDemand]:
    """Keep the highest value-density apps that fit (paper: "prioritizing
    high-value applications")."""
    ranked = sorted(
        demands,
        key=lambda d: (-(d.value * d.access_rate), d.app_id),
    )
    kept: list[AppDemand] = []
    used = 0
    for demand in ranked:
        if used + demand.pooled_bytes <= capacity:
            kept.append(demand)
            used += demand.pooled_bytes
    return kept


def _greedy_place(
    demands: _t.Sequence[AppDemand], shared: dict[int, int]
) -> SizingPlan:
    """Local-first greedy placement into fixed shared sizes, highest
    value density first."""
    free = dict(shared)
    placement: dict[str, dict[int, int]] = {}
    satisfied: dict[str, bool] = {}
    objective = 0.0
    ranked = sorted(
        demands, key=lambda d: (-(d.value * d.access_rate), d.app_id)
    )
    for demand in ranked:
        need = demand.pooled_bytes
        placed: dict[int, int] = {}
        home = demand.home_server
        if home in free and free[home] > 0 and need > 0:
            take = min(free[home], need)
            placed[home] = take
            free[home] -= take
            need -= take
            if demand.pooled_bytes:
                objective += (
                    demand.value * demand.access_rate * take / demand.pooled_bytes
                )
        for sid in sorted(free):
            if need <= 0:
                break
            if sid == home or free[sid] <= 0:
                continue
            take = min(free[sid], need)
            placed[sid] = take
            free[sid] -= take
            need -= take
        placement[demand.app_id] = placed
        satisfied[demand.app_id] = need <= 0
    return SizingPlan(
        shared_bytes=dict(shared),
        placement=placement,
        satisfied=satisfied,
        objective=objective,
    )


POLICIES: dict[str, type[SizingPolicy]] = {
    StaticSizing.name: StaticSizing,
    DemandDrivenSizing.name: DemandDrivenSizing,
    GlobalOptimizerSizing.name: GlobalOptimizerSizing,
}
