"""Inclusive snoop filter with back-invalidation.

CXL implements multi-host coherence "via an Inclusive Snoop Filter and
a Back-Invalidation protocol" (§2.2).  Inclusivity means every line any
host caches must have a filter entry at the home; when the filter is
full, inserting a new line evicts a victim entry and *back-invalidates*
its cached copies everywhere.

This is the mechanism that makes large coherent regions expensive —
"limiting the amount of coherent memory lessens the likelihood of
filling CXL's Inclusive Snoop Filter" (§3.2) — and the knob the A4
ablation turns.
"""

from __future__ import annotations

import collections

from repro.errors import ConfigError


class SnoopFilter:
    """Bounded, LRU-evicting tracker of which hosts cache which lines."""

    def __init__(self, capacity_lines: int, name: str = "snoopfilter") -> None:
        if capacity_lines < 1:
            raise ConfigError(f"snoop filter needs capacity >= 1, got {capacity_lines}")
        self.capacity_lines = capacity_lines
        self.name = name
        #: line -> sharer set; ordered dict gives LRU order
        self._entries: collections.OrderedDict[int, set[int]] = collections.OrderedDict()
        self.insertions = 0
        self.hits = 0
        self.back_invalidations = 0  # evicted entries (one per victim line)
        self.back_invalidation_messages = 0  # per-sharer messages sent

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def sharers(self, line: int) -> set[int]:
        """Hosts currently caching *line* (empty set if untracked)."""
        entry = self._entries.get(line)
        return set(entry) if entry else set()

    def track(self, line: int, host: int) -> list[tuple[int, set[int]]]:
        """Record that *host* now caches *line*.

        Returns the victims evicted to make room: a list of
        ``(victim_line, victim_sharers)`` the caller must
        back-invalidate.  Usually empty; never contains *line* itself.
        """
        victims: list[tuple[int, set[int]]] = []
        entry = self._entries.get(line)
        if entry is not None:
            self.hits += 1
            entry.add(host)
            self._entries.move_to_end(line)
            return victims
        while len(self._entries) >= self.capacity_lines:
            victim_line, victim_sharers = self._entries.popitem(last=False)
            self.back_invalidations += 1
            self.back_invalidation_messages += len(victim_sharers)
            victims.append((victim_line, victim_sharers))
        self._entries[line] = {host}
        self.insertions += 1
        return victims

    def untrack(self, line: int, host: int) -> None:
        """Host dropped its copy (invalidation ack, cache replacement)."""
        entry = self._entries.get(line)
        if entry is None:
            return
        entry.discard(host)
        if not entry:
            del self._entries[line]

    def drop_line(self, line: int) -> set[int]:
        """Remove the whole entry (e.g. after a writeback-invalidate);
        returns the sharers that held it."""
        return self._entries.pop(line, set())

    def tracked_lines(self) -> tuple[int, ...]:
        """Every line with a filter entry, in LRU order (oldest first).

        Used by :class:`repro.check.CoherenceSanitizer` to verify the
        filter stays consistent with the directory's sharer sets.
        """
        return tuple(self._entries)

    def pressure(self) -> float:
        """Back-invalidations per insertion — the ablation's y-axis."""
        return self.back_invalidations / self.insertions if self.insertions else 0.0
