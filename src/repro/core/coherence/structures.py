"""Shared data structures on coherent memory.

The coherent region exists "for coordination and synchronization"
(§3.2).  Locks and barriers (:mod:`repro.core.coherence.sync`) are the
primitives; real systems coordinate through *structures* built on them.
Three workhorses, all functional (values are real) and timed (every
operation is protocol traffic):

* :class:`SharedCounter` — fetch-and-add statistics/sequence counter;
  one atomic per update, no lock.
* :class:`SeqLock` — optimistic reader/writer coordination: readers
  retry around odd sequence values instead of taking a lock, so
  read-mostly metadata (like the pool's coarse global map!) costs no
  writer blocking.
* :class:`MessageQueue` — a bounded MPMC ring over coherent lines,
  the control-plane channel compute shipping and recovery would use.
"""

from __future__ import annotations

import typing as _t

from repro.core.coherence.protocol import CoherenceDirectory
from repro.core.coherence.sync import TicketLock
from repro.errors import CoherenceError, ConfigError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.process import Process

_BACKOFF_START = 50.0
_BACKOFF_CAP = 3200.0


class SharedCounter:
    """A lock-free fetch-and-add counter on one coherent line."""

    def __init__(self, directory: CoherenceDirectory, line: int) -> None:
        self.directory = directory
        self.line = line

    def add(self, host: int, amount: int = 1) -> "Process":
        """Atomically add; the process returns the *previous* value."""
        return self.directory.engine.process(
            self._add_body(host, amount), name=f"counter{self.line}.add"
        )

    def _add_body(self, host: int, amount: int):
        old, _new = yield self.directory.atomic_rmw(
            host, self.line, lambda v, a=amount: v + a
        )
        return old

    def read(self, host: int) -> "Process":
        """Coherent read; the process returns the current value."""
        return self.directory.load(host, self.line)

    def peek(self) -> int:
        """Test support: the authoritative value, no timing."""
        return self.directory.peek(self.line)


class SeqLock:
    """Sequence lock over a payload of coherent lines.

    Writers bump the sequence to odd, update the payload, bump to even.
    Readers snapshot the sequence, read the payload, and retry if the
    sequence was odd or changed — no writer blocking, which is why
    read-mostly structures (statistics blocks, coarse maps) use them.
    """

    def __init__(
        self, directory: CoherenceDirectory, seq_line: int, payload_lines: _t.Sequence[int]
    ) -> None:
        if not payload_lines:
            raise ConfigError("seqlock needs at least one payload line")
        if seq_line in payload_lines:
            raise ConfigError("sequence line must not overlap the payload")
        self.directory = directory
        self.seq_line = seq_line
        self.payload_lines = tuple(payload_lines)
        self.read_retries = 0
        self.writes = 0

    def write(self, host: int, values: _t.Sequence[int]) -> "Process":
        """Publish a new payload atomically w.r.t. readers."""
        if len(values) != len(self.payload_lines):
            raise ConfigError(
                f"payload has {len(self.payload_lines)} lines, got {len(values)} values"
            )
        return self.directory.engine.process(
            self._write_body(host, tuple(values)), name="seqlock.write"
        )

    def _write_body(self, host: int, values: tuple[int, ...]):
        # enter: make the sequence odd
        old, seq = yield self.directory.atomic_rmw(
            host, self.seq_line, lambda v: v + 1
        )
        if seq % 2 == 0:
            raise CoherenceError("concurrent seqlock writers (serialize them)")
        for line, value in zip(self.payload_lines, values):
            yield self.directory.store(host, line, value)
        yield self.directory.atomic_rmw(host, self.seq_line, lambda v: v + 1)
        self.writes += 1
        return seq + 1

    def read(self, host: int) -> "Process":
        """Consistent snapshot; the process returns the payload tuple."""
        return self.directory.engine.process(self._read_body(host), name="seqlock.read")

    def _read_body(self, host: int):
        engine = self.directory.engine
        backoff = _BACKOFF_START
        while True:
            seq_before = yield self.directory.load(host, self.seq_line)
            if seq_before % 2 == 0:
                values = []
                for line in self.payload_lines:
                    value = yield self.directory.load(host, line)
                    values.append(value)
                seq_after = yield self.directory.load(host, self.seq_line)
                if seq_after == seq_before:
                    return tuple(values)
            self.read_retries += 1
            yield engine.timeout(backoff)
            backoff = min(backoff * 2.0, _BACKOFF_CAP)


class MessageQueue:
    """A bounded MPMC queue over coherent memory.

    Layout: one ticket lock (2 lines) + head + tail counters (2 lines)
    + ``capacity`` slot lines.  Slots carry integers (handles/opcodes —
    bulk payloads belong in the non-coherent pool, with the queue
    carrying their logical addresses, exactly how a real LMP runtime
    would pass work descriptors).
    """

    LINES_FOR_CONTROL = 4  # ticket(2) + head + tail

    def __init__(
        self, directory: CoherenceDirectory, base_line: int, capacity: int
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"queue capacity must be >= 1, got {capacity}")
        self.directory = directory
        self.capacity = capacity
        self._lock = TicketLock(directory, base_line, base_line + 1)
        self._head_line = base_line + 2
        self._tail_line = base_line + 3
        self._slot_base = base_line + 4
        self.lines_used = self.LINES_FOR_CONTROL + capacity
        self.enqueues = 0
        self.dequeues = 0
        self.full_retries = 0
        self.empty_retries = 0

    def put(self, host: int, value: int) -> "Process":
        """Enqueue (blocking while full); the process returns the slot index."""
        return self.directory.engine.process(self._put_body(host, value), name="mq.put")

    def _put_body(self, host: int, value: int):
        engine = self.directory.engine
        backoff = _BACKOFF_START
        while True:
            yield self._lock.acquire(host)
            head = yield self.directory.load(host, self._head_line)
            tail = yield self.directory.load(host, self._tail_line)
            if tail - head < self.capacity:
                slot = tail % self.capacity
                yield self.directory.store(host, self._slot_base + slot, value)
                yield self.directory.store(host, self._tail_line, tail + 1)
                yield self._lock.release(host)
                self.enqueues += 1
                return slot
            yield self._lock.release(host)
            self.full_retries += 1
            yield engine.timeout(backoff)
            backoff = min(backoff * 2.0, _BACKOFF_CAP)

    def get(self, host: int) -> "Process":
        """Dequeue (blocking while empty); the process returns the value."""
        return self.directory.engine.process(self._get_body(host), name="mq.get")

    def _get_body(self, host: int):
        engine = self.directory.engine
        backoff = _BACKOFF_START
        while True:
            yield self._lock.acquire(host)
            head = yield self.directory.load(host, self._head_line)
            tail = yield self.directory.load(host, self._tail_line)
            if tail > head:
                slot = head % self.capacity
                value = yield self.directory.load(host, self._slot_base + slot)
                yield self.directory.store(host, self._head_line, head + 1)
                yield self._lock.release(host)
                self.dequeues += 1
                return value
            yield self._lock.release(host)
            self.empty_retries += 1
            yield engine.timeout(backoff)
            backoff = min(backoff * 2.0, _BACKOFF_CAP)

    def depth(self) -> int:
        """Test support: current occupancy, no timing."""
        return self.directory.peek(self._tail_line) - self.directory.peek(self._head_line)
