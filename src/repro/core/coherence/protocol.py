"""Directory-based MSI coherence over the fabric.

The coherent region's lines are striped across the participating
servers; each line has a *home* that holds its directory entry, its
snoop-filter slot, and its authoritative value.  Hosts keep private
caches of lines in state S (shared, read-only) or M (modified,
exclusive).  The protocol:

* **load** — cache hit serves locally; miss goes to the home, which
  downgrades an M owner (writeback) if needed, adds the requester as a
  sharer, and returns the value.
* **store** — M hit serves locally; otherwise the home invalidates all
  other copies (back-invalidation round trips), grants M, and the value
  is updated.
* **atomic_rmw** — fetch-and-φ executed *at the home*, serialized by
  the home's directory queue; everyone's cached copies are invalidated.
  This is what the synchronization primitives build on.

Timing: a home access pays the fabric's loaded latency (local-latency
when the requester is the home — the LMP advantage applies to coherence
too), a directory service time, and one invalidation round trip to the
farthest sharer when copies must die.  Every protocol message is also
counted, because the A4 ablation's metric is coherence traffic.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.coherence.snoop_filter import SnoopFilter
from repro.errors import CoherenceError, ConfigError
from repro.sim.resources import FifoQueue, Mutex

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.check.sanitizers import CoherenceSanitizer
    from repro.sim.process import Process
    from repro.topology.builder import Deployment


@dataclasses.dataclass
class CoherenceStats:
    """Protocol traffic counters."""

    loads: int = 0
    stores: int = 0
    rmws: int = 0
    cache_hits: int = 0
    directory_messages: int = 0
    remote_directory_messages: int = 0  # requester != home: crossed the fabric
    invalidation_messages: int = 0
    remote_invalidation_messages: int = 0  # victim != home: crossed the fabric
    writebacks: int = 0


@dataclasses.dataclass
class _DirEntry:
    """Directory state for one line."""

    owner: int | None = None  # host holding M, if any
    sharers: set[int] = dataclasses.field(default_factory=set)


class CoherenceDirectory:
    """The coherent region: directory + snoop filters + values + caches."""

    LINE_BYTES = 64

    #: installed by repro.check.CoherenceSanitizer to re-verify MESI
    #: invariants after every transition (None = checks disabled)
    _sanitizer: _t.ClassVar["CoherenceSanitizer | None"] = None

    #: installed by repro.check.races.RaceSanitizer; called as
    #: fn(directory, op, host, line) at the completion of every load /
    #: store / rmw.  Loads are acquire edges, stores release edges, rmws
    #: both — this is what gives the sync primitives (and any app-level
    #: protocol built on coherent lines) their happens-before ordering.
    _race_hook: _t.ClassVar[_t.Any] = None

    #: installed by repro.obs.Observability: annotates the running
    #: transaction's span (op/host/line/hit, latency categories) and
    #: counts protocol ops in the metrics registry.  None = disabled.
    _obs: _t.ClassVar[_t.Any] = None

    def __init__(
        self,
        deployment: "Deployment",
        region_bytes: int,
        snoop_filter_lines: int = 4096,
        directory_service_ns: float = 20.0,
    ) -> None:
        if region_bytes < self.LINE_BYTES:
            raise ConfigError(f"coherent region smaller than one line: {region_bytes}")
        self.deployment = deployment
        self.engine = deployment.engine
        self.switch = deployment.switch
        self.fluid = deployment.fluid
        self.region_bytes = region_bytes
        self.line_count = region_bytes // self.LINE_BYTES
        self.server_ids = [s.server_id for s in deployment.servers]
        self.stats = CoherenceStats()
        #: per-home directory service queues and snoop filters
        self._queues: dict[int, FifoQueue] = {
            sid: FifoQueue(self.engine, directory_service_ns, name=f"dir{sid}")
            for sid in self.server_ids
        }
        self.snoop_filters: dict[int, SnoopFilter] = {
            sid: SnoopFilter(snoop_filter_lines, name=f"sf{sid}")
            for sid in self.server_ids
        }
        self._entries: dict[int, _DirEntry] = {}
        self._values: dict[int, int] = {}
        #: per-line transition locks: the home processes one coherence
        #: transition per line at a time, like a real directory's
        #: transient-state blocking
        self._line_locks: dict[int, Mutex] = {}
        #: host -> set of lines cached (S or M — M iff entry.owner == host)
        self._caches: dict[int, set[int]] = {sid: set() for sid in self.server_ids}

    # -- geometry ------------------------------------------------------------

    def home_of(self, line: int) -> int:
        """Lines stripe round-robin across the participating servers."""
        self._check_line(line)
        return self.server_ids[line % len(self.server_ids)]

    def _check_line(self, line: int) -> None:
        if not 0 <= line < self.line_count:
            raise CoherenceError(
                f"line {line} outside coherent region of {self.line_count} lines"
            )

    def _entry(self, line: int) -> _DirEntry:
        return self._entries.setdefault(line, _DirEntry())

    def _line_lock(self, line: int) -> Mutex:
        lock = self._line_locks.get(line)
        if lock is None:
            lock = Mutex(self.engine)
            self._line_locks[line] = lock
        return lock

    def _after_transition(self, line: int, op: str = "", host: int | None = None) -> None:
        """Sanitizer hook: verify *line*'s invariants post-transition and
        feed the race detector's per-line vector clocks."""
        sanitizer = type(self)._sanitizer
        if sanitizer is not None:
            sanitizer.verify_line(self, line)
        hook = type(self)._race_hook
        if hook is not None and op:
            hook(self, op, host, line)

    def _latency(self, requester: int, target: int) -> float:
        """Loaded latency requester -> target (local curve when equal)."""
        req = self.deployment.server(requester)
        tgt = self.deployment.server(target)
        return self.switch.read_route(req.name, tgt.name).loaded_latency()

    # -- peeks (test support; no timing) ------------------------------------------

    def peek(self, line: int) -> int:
        """Authoritative value without protocol actions."""
        self._check_line(line)
        return self._values.get(line, 0)

    def cached_lines(self, host: int) -> set[int]:
        return set(self._caches[host])

    def entry_view(self, line: int) -> tuple[int | None, tuple[int, ...]]:
        """Canonical ``(owner, sorted sharers)`` directory view.

        The adapter seam for ``repro.check.model``: the model checker's
        coherence spec cross-checks its abstract directory against this
        after every replayed transition, so model and implementation
        cannot drift silently.
        """
        self._check_line(line)
        entry = self._entries.get(line)
        if entry is None:
            return (None, ())
        return (entry.owner, tuple(sorted(entry.sharers)))

    def state_of(self, line: int, host: int) -> str:
        """'M', 'S', or 'I' — for protocol invariant checks."""
        entry = self._entries.get(line)
        if entry is None or line not in self._caches[host]:
            return "I"
        if entry.owner == host:
            return "M"
        return "S"

    def check_invariants(self) -> None:
        """SWMR: at most one M holder, and M excludes other sharers."""
        for line, entry in self._entries.items():
            holders = [h for h in self.server_ids if line in self._caches[h]]
            if entry.owner is not None:
                assert holders == [entry.owner] or set(holders) == {entry.owner}, (
                    f"line {line}: M owner {entry.owner} coexists with {holders}"
                )
            for h in holders:
                assert h in entry.sharers or h == entry.owner, (
                    f"line {line}: host {h} cached but not tracked"
                )

    # -- protocol operations -----------------------------------------------------

    def load(self, host: int, line: int) -> "Process":
        """Coherent load; the process returns the line's value."""
        return self.engine.process(self._load_body(host, line), name=f"coh.load{line}")

    def _load_body(self, host: int, line: int):
        self._check_line(line)
        self.stats.loads += 1
        obs = type(self)._obs
        entry = self._entry(line)
        if line in self._caches[host] and entry.owner in (None, host):
            self.stats.cache_hits += 1
            if obs is not None:
                obs.coherence_op(self, "load", host, line, hit=True)
                obs.add("cat_cache_ns", 1.0)
            yield self.engine.timeout(1.0)  # L1 hit
            self._after_transition(line, "load", host)
            return self._values.get(line, 0)

        home = self.home_of(line)
        home_latency = self._latency(host, home)
        if obs is not None:
            obs.coherence_op(self, "load", host, line, hit=False)
            obs.add("cat_link_ns", home_latency)
        yield self.engine.timeout(home_latency)
        entered = self.engine.now
        yield self._line_lock(line).acquire()
        try:
            yield self._queues[home].submit()
            if obs is not None:
                obs.add("cat_queue_ns", self.engine.now - entered)
            self.stats.directory_messages += 1
            if home != host:
                self.stats.remote_directory_messages += 1

            owner = entry.owner
            if owner is not None and owner != host:
                # downgrade M -> S with writeback
                downgrade = self._latency(home, owner)
                if obs is not None:
                    obs.add("cat_link_ns", downgrade)
                yield self.engine.timeout(downgrade)
                self._caches[owner].discard(line)
                entry.sharers.discard(owner)
                self.snoop_filters[home].untrack(line, owner)
                entry.owner = None
                self.stats.writebacks += 1
                self.stats.invalidation_messages += 1

            entry.sharers.add(host)
            self._caches[host].add(line)
            yield from self._track(home, line, host)
            self._after_transition(line, "load", host)
            return self._values.get(line, 0)
        finally:
            self._line_lock(line).release()

    def store(self, host: int, line: int, value: int) -> "Process":
        """Coherent store; the process returns the stored value."""
        return self.engine.process(
            self._store_body(host, line, value), name=f"coh.store{line}"
        )

    def _store_body(self, host: int, line: int, value: int):
        self._check_line(line)
        self.stats.stores += 1
        obs = type(self)._obs
        entry = self._entry(line)
        if entry.owner == host:
            self.stats.cache_hits += 1
            if obs is not None:
                obs.coherence_op(self, "store", host, line, hit=True)
                obs.add("cat_cache_ns", 1.0)
            yield self.engine.timeout(1.0)
            self._values[line] = value
            self._after_transition(line, "store", host)
            return value

        home = self.home_of(line)
        home_latency = self._latency(host, home)
        if obs is not None:
            obs.coherence_op(self, "store", host, line, hit=False)
            obs.add("cat_link_ns", home_latency)
        yield self.engine.timeout(home_latency)
        entered = self.engine.now
        yield self._line_lock(line).acquire()
        try:
            yield self._queues[home].submit()
            if obs is not None:
                obs.add("cat_queue_ns", self.engine.now - entered)
            self.stats.directory_messages += 1
            if home != host:
                self.stats.remote_directory_messages += 1
            yield from self._invalidate_others(home, line, keep=host)
            entry.owner = host
            entry.sharers = {host}
            self._caches[host].add(line)
            yield from self._track(home, line, host)
            self._values[line] = value
            self._after_transition(line, "store", host)
            return value
        finally:
            self._line_lock(line).release()

    def atomic_rmw(
        self, host: int, line: int, fn: _t.Callable[[int], int]
    ) -> "Process":
        """Atomic read-modify-write at the home; the process returns
        (old_value, new_value)."""
        return self.engine.process(
            self._rmw_body(host, line, fn), name=f"coh.rmw{line}"
        )

    def _rmw_body(self, host: int, line: int, fn: _t.Callable[[int], int]):
        self._check_line(line)
        self.stats.rmws += 1
        obs = type(self)._obs
        home = self.home_of(line)
        home_latency = self._latency(host, home)
        if obs is not None:
            obs.coherence_op(self, "rmw", host, line, hit=False)
            obs.add("cat_link_ns", home_latency)
        yield self.engine.timeout(home_latency)
        entered = self.engine.now
        yield self._line_lock(line).acquire()
        try:
            yield self._queues[home].submit()
            if obs is not None:
                obs.add("cat_queue_ns", self.engine.now - entered)
            self.stats.directory_messages += 1
            if home != host:
                self.stats.remote_directory_messages += 1
            # atomics execute at the home: every cached copy dies
            yield from self._invalidate_others(home, line, keep=None)
            entry = self._entry(line)
            entry.owner = None
            entry.sharers = set()
            old = self._values.get(line, 0)
            new = fn(old)
            self._values[line] = new
            self._after_transition(line, "rmw", host)
            return old, new
        finally:
            self._line_lock(line).release()

    def evict(self, host: int, line: int) -> "Process":
        """Voluntarily drop *host*'s cached copy (a capacity eviction);
        the process returns True when a copy was actually dropped.

        Snoop-filter overflow performs the same transition implicitly;
        exposing it as an explicit operation gives tests and the model
        checker's coherence spec a way to drive evictions directly.
        """
        return self.engine.process(
            self._evict_body(host, line), name=f"coh.evict{line}"
        )

    def _evict_body(self, host: int, line: int):
        self._check_line(line)
        yield self._line_lock(line).acquire()
        try:
            if line not in self._caches[host]:
                return False
            entry = self._entry(line)
            self._caches[host].discard(line)
            entry.sharers.discard(host)
            self.snoop_filters[self.home_of(line)].untrack(line, host)
            if entry.owner == host:
                entry.owner = None
                self.stats.writebacks += 1
            self.stats.invalidation_messages += 1
            self._after_transition(line)
            return True
        finally:
            self._line_lock(line).release()

    # -- shared sub-flows --------------------------------------------------------

    def _invalidate_others(self, home: int, line: int, keep: int | None):
        """Invalidate every cached copy except *keep*'s; one round trip
        to the farthest victim (invalidations go out in parallel)."""
        entry = self._entry(line)
        victims = {h for h in entry.sharers if h != keep}
        if entry.owner is not None and entry.owner != keep:
            victims.add(entry.owner)
            self.stats.writebacks += 1
        if not victims:
            return
        worst = max(self._latency(home, v) for v in victims)
        obs = type(self)._obs
        if obs is not None:
            obs.add("cat_link_ns", worst)
        yield self.engine.timeout(worst)
        for victim in sorted(victims):
            self._caches[victim].discard(line)
            entry.sharers.discard(victim)
            self.snoop_filters[home].untrack(line, victim)
            self.stats.invalidation_messages += 1
            if victim != home:
                self.stats.remote_invalidation_messages += 1
        if entry.owner in victims:
            entry.owner = None

    def _track(self, home: int, line: int, host: int):
        """Insert into the home's snoop filter, back-invalidating victims
        if the filter overflows."""
        victims = self.snoop_filters[home].track(line, host)
        obs = type(self)._obs
        for victim_line, victim_sharers in victims:
            if not victim_sharers:
                continue
            worst = max(self._latency(home, v) for v in victim_sharers)
            if obs is not None:
                obs.add("cat_link_ns", worst)
            yield self.engine.timeout(worst)
            victim_entry = self._entries.get(victim_line)
            for sharer in sorted(victim_sharers):
                self._caches[sharer].discard(victim_line)
                self.stats.invalidation_messages += 1
                if victim_entry is not None:
                    victim_entry.sharers.discard(sharer)
                    if victim_entry.owner == sharer:
                        victim_entry.owner = None
                        self.stats.writebacks += 1
