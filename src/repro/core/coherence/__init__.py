"""The coherent region (§3.2, §5 "Cache coherence").

"LMPs do not assume cache coherence for all shared memory.  Instead, it
provides a small amount (a few GBs) of coherent memory that can be used
for coordination and synchronization."

* :mod:`repro.core.coherence.protocol` — a directory-based MSI protocol
  over the fabric, with real data values so synchronization primitives
  are functionally correct, and full timing so coherence traffic is
  measurable.
* :mod:`repro.core.coherence.snoop_filter` — the inclusive snoop filter
  whose capacity pressure causes back-invalidations (the reason the
  coherent region must stay small).
* :mod:`repro.core.coherence.sync` — spinlocks, ticket locks,
  NUMA-aware cohort locks, and sense-reversing barriers built on the
  protocol, mirroring the NUMA-aware coordination work the paper cites.
"""

from repro.core.coherence.protocol import CoherenceDirectory, CoherenceStats
from repro.core.coherence.snoop_filter import SnoopFilter
from repro.core.coherence.sync import Barrier, CohortLock, SpinLock, TicketLock

__all__ = [
    "Barrier",
    "CoherenceDirectory",
    "CoherenceStats",
    "CohortLock",
    "SnoopFilter",
    "SpinLock",
    "TicketLock",
]
