"""Synchronization primitives on coherent memory.

The coherent region exists "for coordination and synchronization"
(§3.2), and the paper points at NUMA-aware coordination work (cohort
locks, compact NUMA-aware locks) as the way to keep coherence traffic
down (§5).  We build the classic ladder:

* :class:`SpinLock` — test-and-set with exponential backoff.  Simple,
  but every contended attempt is an atomic at the home: maximum
  coherence traffic.
* :class:`TicketLock` — FIFO-fair; waiters spin on a *read-shared*
  now-serving line, so waiting costs S-state hits instead of atomics.
* :class:`CohortLock` — NUMA-aware (Dice et al.): a per-server local
  ticket lock plus a global grant line; the lock prefers handing off
  within the holder's server, amortizing one fabric-crossing global
  acquisition over up to ``cohort_limit`` local critical sections.
* :class:`Barrier` — sense-reversing centralized barrier.

All primitives are *functional* (they really exclude / really release)
and *measured* (every wait and protocol action runs on the simulated
clock through :class:`~repro.core.coherence.protocol.CoherenceDirectory`),
so the A4 ablation can compare their coherence traffic under identical
contention.
"""

from __future__ import annotations

import typing as _t

from repro.core.coherence.protocol import CoherenceDirectory
from repro.errors import CoherenceError, ConfigError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.process import Process

_BACKOFF_START = 50.0  # ns
_BACKOFF_CAP = 3200.0  # ns


class SpinLock:
    """Test-and-set lock with exponential backoff."""

    def __init__(self, directory: CoherenceDirectory, line: int) -> None:
        self.directory = directory
        self.line = line
        self.acquisitions = 0
        self.failed_attempts = 0

    def acquire(self, host: int) -> "Process":
        return self.directory.engine.process(
            self._acquire_body(host), name=f"spinlock{self.line}.acq"
        )

    def _acquire_body(self, host: int):
        backoff = _BACKOFF_START
        while True:
            old, _new = yield self.directory.atomic_rmw(host, self.line, lambda v: 1)
            if old == 0:
                self.acquisitions += 1
                return True
            self.failed_attempts += 1
            yield self.directory.engine.timeout(backoff)
            backoff = min(backoff * 2.0, _BACKOFF_CAP)

    def release(self, host: int) -> "Process":
        return self.directory.engine.process(
            self._release_body(host), name=f"spinlock{self.line}.rel"
        )

    def _release_body(self, host: int):
        old, _new = yield self.directory.atomic_rmw(host, self.line, lambda _v: 0)
        if old == 0:
            raise CoherenceError(f"spinlock line {self.line} released while free")
        return True


class TicketLock:
    """FIFO ticket lock: one atomic to enter, shared-read spinning."""

    def __init__(self, directory: CoherenceDirectory, ticket_line: int, serving_line: int) -> None:
        if ticket_line == serving_line:
            raise ConfigError("ticket and now-serving lines must differ")
        self.directory = directory
        self.ticket_line = ticket_line
        self.serving_line = serving_line
        self.acquisitions = 0

    def acquire(self, host: int) -> "Process":
        return self.directory.engine.process(
            self._acquire_body(host), name=f"ticket{self.ticket_line}.acq"
        )

    def _acquire_body(self, host: int):
        my_ticket, _ = yield self.directory.atomic_rmw(
            host, self.ticket_line, lambda v: v + 1
        )
        backoff = _BACKOFF_START
        while True:
            serving = yield self.directory.load(host, self.serving_line)
            if serving == my_ticket:
                self.acquisitions += 1
                return my_ticket
            # proportional backoff: the further back in line, the longer
            # the nap — the classic ticket-lock optimization
            distance = max(1, my_ticket - serving)
            yield self.directory.engine.timeout(min(backoff * distance, _BACKOFF_CAP * 4))
            backoff = min(backoff * 1.5, _BACKOFF_CAP)

    def release(self, host: int) -> "Process":
        return self.directory.engine.process(
            self._release_body(host), name=f"ticket{self.ticket_line}.rel"
        )

    def _release_body(self, host: int):
        _old, new = yield self.directory.atomic_rmw(
            host, self.serving_line, lambda v: v + 1
        )
        return new


class CohortLock:
    """NUMA-aware lock: per-server local ticket locks + a global owner line.

    A thread first wins its server's local lock, then checks the global
    line: if its server already holds the global lock (a *cohort
    handoff* left it there), it enters immediately — no fabric traffic.
    Otherwise it acquires the global line with atomics.  On release, if
    local waiters exist and the cohort budget isn't exhausted, the
    global lock stays with the server (handoff); otherwise it is
    released globally.
    """

    #: global-line values: 0 free, server_id+1 held by that server's cohort
    def __init__(
        self,
        directory: CoherenceDirectory,
        base_line: int,
        server_ids: _t.Sequence[int],
        cohort_limit: int = 8,
    ) -> None:
        if cohort_limit < 1:
            raise ConfigError(f"cohort_limit must be >= 1, got {cohort_limit}")
        self.directory = directory
        self.global_line = base_line
        self.cohort_limit = cohort_limit
        self.server_ids = list(server_ids)
        # Per-server local ticket/serving lines, chosen so each server's
        # lines are *homed on that server* (lines stripe round-robin in
        # the directory): a cohort handoff then costs only local-latency
        # coherence ops — the whole point of NUMA-aware locking.
        self._local: dict[int, TicketLock] = {}
        n = len(self.server_ids)
        block = list(range(base_line + 1, base_line + 1 + 2 * n))
        for index, sid in enumerate(self.server_ids):
            mine = [line for line in block if line % n == index]
            if len(mine) < 2:  # block misalignment: fall back to any two
                mine = block[2 * index : 2 * index + 2]
            self._local[sid] = TicketLock(directory, mine[0], mine[1])
        self.lines_used = 1 + 2 * n
        #: per-server consecutive local handoffs
        self._streak: dict[int, int] = {sid: 0 for sid in self.server_ids}
        self._local_waiters: dict[int, int] = {sid: 0 for sid in self.server_ids}
        self.global_acquisitions = 0
        self.local_handoffs = 0

    def acquire(self, host: int) -> "Process":
        return self.directory.engine.process(
            self._acquire_body(host), name=f"cohort{self.global_line}.acq"
        )

    def _acquire_body(self, host: int):
        self._local_waiters[host] += 1
        yield self._local[host].acquire(host)
        self._local_waiters[host] -= 1
        token = host + 1
        current = yield self.directory.load(host, self.global_line)
        if current == token:
            # cohort handoff: the global lock never left our server
            self.local_handoffs += 1
            return True
        backoff = _BACKOFF_START
        while True:
            old, _new = yield self.directory.atomic_rmw(
                host, self.global_line, lambda v, t=token: t if v == 0 else v
            )
            if old == 0:
                self.global_acquisitions += 1
                return True
            yield self.directory.engine.timeout(backoff)
            backoff = min(backoff * 2.0, _BACKOFF_CAP)

    def release(self, host: int) -> "Process":
        return self.directory.engine.process(
            self._release_body(host), name=f"cohort{self.global_line}.rel"
        )

    def _release_body(self, host: int):
        keep = (
            self._local_waiters[host] > 0
            and self._streak[host] + 1 < self.cohort_limit
        )
        if keep:
            self._streak[host] += 1
            # leave the global line owned by our cohort
        else:
            self._streak[host] = 0
            yield self.directory.atomic_rmw(host, self.global_line, lambda _v: 0)
        yield self._local[host].release(host)
        return keep


class Barrier:
    """Sense-reversing centralized barrier over two coherent lines."""

    def __init__(
        self, directory: CoherenceDirectory, count_line: int, sense_line: int, parties: int
    ) -> None:
        if parties < 1:
            raise ConfigError(f"barrier needs >= 1 parties, got {parties}")
        if count_line == sense_line:
            raise ConfigError("count and sense lines must differ")
        self.directory = directory
        self.count_line = count_line
        self.sense_line = sense_line
        self.parties = parties
        self.generations = 0

    def wait(self, host: int) -> "Process":
        return self.directory.engine.process(
            self._wait_body(host), name=f"barrier{self.count_line}.wait"
        )

    def _wait_body(self, host: int):
        sense = yield self.directory.load(host, self.sense_line)
        old, _new = yield self.directory.atomic_rmw(
            host, self.count_line, lambda v: v + 1
        )
        if old + 1 == self.parties:
            # last arrival: reset the count, flip the sense
            yield self.directory.atomic_rmw(host, self.count_line, lambda _v: 0)
            yield self.directory.atomic_rmw(
                host, self.sense_line, lambda v: 1 - (v & 1)
            )
            self.generations += 1
            return self.generations
        backoff = _BACKOFF_START
        while True:
            current = yield self.directory.load(host, self.sense_line)
            if current != sense:
                return self.generations
            yield self.directory.engine.timeout(backoff)
            backoff = min(backoff * 2.0, _BACKOFF_CAP)
