"""The application library (§3.2).

Applications on server *i* open an :class:`LmpSession` against the
runtime and get the paper's programming model:

* ``alloc`` / ``free`` — buffers in the global pool,
* ``map`` — bind a buffer into the session's virtual address space
  ("mapping a range of virtual addresses to memory in the pool"),
* ``read_v`` / ``write_v`` — access through virtual addresses; the
  session translates vaddr -> buffer -> logical address -> (server,
  frame) via the two-step scheme,
* ``scan`` — a timed full-bandwidth streaming pass with this server's
  cores (what the microbenchmark does),
* ``sum_shipped`` — near-memory aggregation via compute shipping,
* ``spinlock`` / ``ticket_lock`` / ``cohort_lock`` / ``barrier`` —
  synchronization objects carved from the coherent region.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.buffer import Buffer
from repro.core.coherence.sync import Barrier, CohortLock, SpinLock, TicketLock
from repro.core.runtime import LmpRuntime
from repro.errors import AddressError, ConfigError
from repro.units import mib

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.process import Process

#: sessions' virtual address spaces start here (purely cosmetic, but it
#: keeps virtual and logical addresses visibly distinct in traces)
_VBASE = 0x7F00_0000_0000


@dataclasses.dataclass(frozen=True)
class Mapping:
    """One buffer bound into a session's virtual address space."""

    vaddr: int
    buffer: Buffer

    @property
    def end(self) -> int:
        return self.vaddr + self.buffer.size


class SessionObserver:
    """Hooks a control plane installs on a session to meter it.

    ``repro.cluster`` uses these to do lease bookkeeping and per-tenant
    quota accounting on every allocation path — including direct
    ``session.alloc`` calls that never went through the rack's admission
    queue, so a tenant cannot sidestep its quota.  All hooks are
    synchronous; ``before_alloc`` may veto by raising.
    """

    def before_alloc(self, session: "LmpSession", size: int) -> None:
        """Called before the pool allocation; raise to veto."""

    def on_alloc(self, session: "LmpSession", buffer: Buffer) -> None:
        """Called after a successful allocation."""

    def on_free(self, session: "LmpSession", buffer: Buffer) -> None:
        """Called after a buffer is released back to the pool."""

    def on_access(
        self,
        session: "LmpSession",
        buffer: Buffer,
        offset: int,
        size: int,
        write: bool,
    ) -> None:
        """Called when the session issues a data-path access (read/write,
        virtual or direct, and per-shard for scans).  Metering and the
        race detector's frame shadowing hang off this seam."""


class LmpSession:
    """One application's handle, bound to its home server."""

    #: installed by repro.check.races.RaceSanitizer: every data-path
    #: access on *every* session is reported here (in addition to the
    #: per-session observer).  None = one class-attribute test per access.
    _access_monitor: _t.ClassVar[SessionObserver | None] = None

    #: installed by repro.obs.Observability: wraps every data-path access
    #: in a session span that closes when the access process completes.
    #: None = one class-attribute test per access.
    _obs: _t.ClassVar[_t.Any] = None

    def __init__(
        self,
        runtime: LmpRuntime,
        server_id: int,
        observer: SessionObserver | None = None,
    ) -> None:
        if server_id not in runtime.pool.regions:
            raise ConfigError(f"server {server_id} is not part of this pool")
        self.runtime = runtime
        self.server_id = server_id
        self.observer = observer
        self._mappings: list[Mapping] = []
        self._next_vaddr = _VBASE

    # -- allocation --------------------------------------------------------------

    def alloc(self, size: int, name: str = "") -> Buffer:
        """Allocate pooled memory, placed local-first for this session."""
        if self.observer is not None:
            self.observer.before_alloc(self, size)
        buffer = self.runtime.pool.allocate(size, requester_id=self.server_id, name=name)
        if self.observer is not None:
            self.observer.on_alloc(self, buffer)
        return buffer

    def free(self, buffer: Buffer) -> None:
        self._mappings = [m for m in self._mappings if m.buffer is not buffer]
        self.runtime.pool.free(buffer)
        if self.observer is not None:
            self.observer.on_free(self, buffer)

    # -- virtual mapping -----------------------------------------------------------

    def map(self, buffer: Buffer) -> Mapping:
        """Bind *buffer* at the next free virtual address."""
        mapping = Mapping(vaddr=self._next_vaddr, buffer=buffer)
        self._next_vaddr += (buffer.size + mib(2) - 1) // mib(2) * mib(2)
        self._mappings.append(mapping)
        return mapping

    def unmap(self, mapping: Mapping) -> None:
        try:
            self._mappings.remove(mapping)
        except ValueError:
            raise AddressError(f"mapping at {mapping.vaddr:#x} is not active") from None

    def _resolve(self, vaddr: int, size: int) -> tuple[Buffer, int]:
        for mapping in self._mappings:
            if mapping.vaddr <= vaddr and vaddr + size <= mapping.end:
                return mapping.buffer, vaddr - mapping.vaddr
        raise AddressError(f"virtual range [{vaddr:#x}, +{size}) is not mapped")

    # -- data path --------------------------------------------------------------

    def _observe_access(
        self, buffer: Buffer, offset: int, size: int, write: bool
    ) -> None:
        monitor = LmpSession._access_monitor
        if monitor is not None:
            monitor.on_access(self, buffer, offset, size, write)
        if self.observer is not None:
            self.observer.on_access(self, buffer, offset, size, write)

    def _traced(self, op: str, nbytes: int, proc_fn: _t.Callable[[], "Process"]) -> "Process":
        """Run *proc_fn* inside a session span (closed when the returned
        data-path process completes)."""
        obs = LmpSession._obs
        if obs is None:
            return proc_fn()
        span = obs.session_begin(self, op, nbytes)
        proc = proc_fn()
        obs.session_end(span, proc)
        return proc

    def read_v(self, vaddr: int, size: int) -> "Process":
        """Read through a virtual address; the process returns the bytes."""
        buffer, offset = self._resolve(vaddr, size)
        self._observe_access(buffer, offset, size, write=False)
        return self._traced(
            "read", size,
            lambda: self.runtime.pool.read(self.server_id, buffer, offset, size),
        )

    def write_v(self, vaddr: int, data: bytes) -> "Process":
        """Write through a virtual address; the process returns bytes written."""
        buffer, offset = self._resolve(vaddr, len(data))
        self._observe_access(buffer, offset, len(data), write=True)
        return self._traced(
            "write", len(data),
            lambda: self.runtime.pool.write(self.server_id, buffer, offset, data),
        )

    def read(self, buffer: Buffer, offset: int, size: int) -> "Process":
        self._observe_access(buffer, offset, size, write=False)
        return self._traced(
            "read", size,
            lambda: self.runtime.pool.read(self.server_id, buffer, offset, size),
        )

    def write(self, buffer: Buffer, offset: int, data: bytes) -> "Process":
        self._observe_access(buffer, offset, len(data), write=True)
        return self._traced(
            "write", len(data),
            lambda: self.runtime.pool.write(self.server_id, buffer, offset, data),
        )

    # -- streaming / compute ------------------------------------------------------

    def scan(self, buffer: Buffer, chunk_bytes: int = mib(32)) -> "Process":
        """Stream the whole buffer with this server's cores; the process
        returns the achieved bandwidth in GB/s."""
        self._observe_access(buffer, 0, buffer.size, write=False)
        return self._traced(
            "scan", buffer.size,
            lambda: self.runtime.engine.process(
                self._scan_body(buffer, chunk_bytes), name="session.scan"
            ),
        )

    def _scan_body(self, buffer: Buffer, chunk_bytes: int):
        engine = self.runtime.engine
        server = self.runtime.deployment.server(self.server_id)
        for core in server.socket.cores:
            core.chunk_bytes = chunk_bytes
        shards = buffer.shards(server.socket.core_count)
        plans = [
            self.runtime.pool.access_segments(self.server_id, buffer, off, length)
            for off, length in shards
        ]
        started = engine.now
        procs = server.socket.parallel_stream(plans)
        yield engine.all_of(procs)
        duration = engine.now - started
        return buffer.size / duration if duration else 0.0

    def sum_shipped(self, buffer: Buffer) -> "Process":
        """Near-memory sum (compute shipping): every byte is read by the
        server that owns it; the process returns the arithmetic sum of
        the buffer's bytes."""
        return self.runtime.compute.map_reduce(
            buffer,
            mapper=lambda chunk: sum(chunk),
            reducer=sum,
            requester_id=self.server_id,
        )

    # -- synchronization objects ----------------------------------------------------

    def spinlock(self) -> SpinLock:
        line = self.runtime.allocate_coherent_lines(1)
        return SpinLock(self.runtime.coherence, line)

    def ticket_lock(self) -> TicketLock:
        line = self.runtime.allocate_coherent_lines(2)
        return TicketLock(self.runtime.coherence, line, line + 1)

    def cohort_lock(self, cohort_limit: int = 8) -> CohortLock:
        server_ids = sorted(self.runtime.pool.regions)
        lines_needed = 1 + 2 * len(server_ids)
        line = self.runtime.allocate_coherent_lines(lines_needed)
        return CohortLock(
            self.runtime.coherence, line, server_ids, cohort_limit=cohort_limit
        )

    def barrier(self, parties: int) -> Barrier:
        line = self.runtime.allocate_coherent_lines(2)
        return Barrier(self.runtime.coherence, line, line + 1, parties)
