"""Systematic Reed–Solomon erasure codes over GF(2^8).

``ReedSolomon(k, m)`` turns *k* data shards into *k + m* total shards
such that **any** *k* of them reconstruct the data — the scheme Carbink
(cited by §5) uses to mask far-memory failures without 2x replication
overhead.

Construction: the generator matrix is ``[I ; C]`` where ``C`` is an
``m x k`` Cauchy matrix ``C[j][i] = 1/(x_j ^ y_i)`` with the ``x`` and
``y`` element sets disjoint.  Every square submatrix of a Cauchy matrix
is nonsingular, so any *k* rows of ``[I ; C]`` are invertible — the
property decoding relies on.

Arithmetic is table-driven (log/antilog over the AES polynomial 0x11b)
and vectorized with numpy via a precomputed 256x256 multiplication
table, so encoding throughput is a few hundred MB/s in pure
Python+numpy — plenty for the simulator's functional data.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.errors import ConfigError, RecoveryError

_PRIMITIVE_POLY = 0x11B  # x^8 + x^4 + x^3 + x + 1 (the AES polynomial)
_GENERATOR = 0x03


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(exp, log, mul) tables for GF(256)."""
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        # v *= generator (0x03)  ==  (v * 2) ^ v, reduced mod the polynomial
        doubled = value << 1
        if doubled & 0x100:
            doubled ^= _PRIMITIVE_POLY
        value = doubled ^ value
    exp[255:510] = exp[0:255]  # wraparound for cheap modular indexing

    mul = np.zeros((256, 256), dtype=np.uint8)
    a = np.arange(256)
    for i in range(1, 256):
        mul[i, 1:] = exp[(log[i] + log[a[1:]]) % 255]
    return exp, log, mul


_EXP, _LOG, _MUL = _build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements."""
    return int(_MUL[a & 0xFF, b & 0xFF])


def gf_inv(a: int) -> int:
    """Multiplicative inverse; raises on zero."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return int(_EXP[255 - _LOG[a]])


def gf_mul_bytes(scalar: int, data: np.ndarray) -> np.ndarray:
    """Multiply every byte of *data* by *scalar* (vectorized)."""
    return _MUL[scalar & 0xFF][data]


def _gf_matrix_invert(matrix: np.ndarray) -> np.ndarray:
    """Invert a square GF(256) matrix by Gauss–Jordan elimination."""
    n = matrix.shape[0]
    work = matrix.astype(np.uint8).copy()
    inverse = np.eye(n, dtype=np.uint8)
    for col in range(n):
        pivot = None
        for row in range(col, n):
            if work[row, col]:
                pivot = row
                break
        if pivot is None:
            raise RecoveryError("singular decode matrix (duplicate shards?)")
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
            inverse[[col, pivot]] = inverse[[pivot, col]]
        inv_p = gf_inv(int(work[col, col]))
        work[col] = gf_mul_bytes(inv_p, work[col])
        inverse[col] = gf_mul_bytes(inv_p, inverse[col])
        for row in range(n):
            if row != col and work[row, col]:
                factor = int(work[row, col])
                work[row] ^= gf_mul_bytes(factor, work[col])
                inverse[row] ^= gf_mul_bytes(factor, inverse[col])
    return inverse


class ReedSolomon:
    """A systematic RS(k, m) code: shards 0..k-1 are the data itself,
    shards k..k+m-1 are parity."""

    def __init__(self, data_shards: int, parity_shards: int) -> None:
        if data_shards < 1 or parity_shards < 0:
            raise ConfigError(
                f"need data_shards >= 1 and parity_shards >= 0, got "
                f"({data_shards}, {parity_shards})"
            )
        if data_shards + parity_shards > 256:
            raise ConfigError("GF(256) supports at most 256 total shards")
        self.k = data_shards
        self.m = parity_shards
        self._cauchy = self._build_cauchy(data_shards, parity_shards)

    @staticmethod
    def _build_cauchy(k: int, m: int) -> np.ndarray:
        """C[j][i] = 1/(x_j ^ y_i), x = {k..k+m-1}, y = {0..k-1}."""
        cauchy = np.zeros((m, k), dtype=np.uint8)
        for j in range(m):
            for i in range(k):
                cauchy[j, i] = gf_inv((k + j) ^ i)
        return cauchy

    # -- encode -------------------------------------------------------------

    def encode(self, data: bytes) -> list[bytes]:
        """Split *data* into k shards (zero-padded) and append m parity
        shards; returns k+m equal-length shards."""
        shard_len = -(-max(len(data), 1) // self.k)
        padded = np.zeros(shard_len * self.k, dtype=np.uint8)
        padded[: len(data)] = np.frombuffer(data, dtype=np.uint8)
        data_shards = padded.reshape(self.k, shard_len)
        parity = np.zeros((self.m, shard_len), dtype=np.uint8)
        for j in range(self.m):
            acc = parity[j]
            for i in range(self.k):
                acc ^= gf_mul_bytes(int(self._cauchy[j, i]), data_shards[i])
        return [bytes(s) for s in data_shards] + [bytes(p) for p in parity]

    # -- decode -------------------------------------------------------------

    def decode(self, shards: dict[int, bytes], data_len: int) -> bytes:
        """Reconstruct the original bytes from any k shards.

        *shards* maps shard index -> shard bytes; *data_len* is the
        original length (to strip padding).
        """
        if len(shards) < self.k:
            raise RecoveryError(
                f"RS({self.k},{self.m}) needs {self.k} shards, got {len(shards)} "
                f"— too many erasures to mask"
            )
        indices = sorted(shards)[: self.k]
        shard_len = len(shards[indices[0]])
        for idx in indices:
            if len(shards[idx]) != shard_len:
                raise RecoveryError("shard length mismatch")
            if not 0 <= idx < self.k + self.m:
                raise RecoveryError(f"shard index {idx} out of range")

        if indices == list(range(self.k)):
            # fast path: all data shards survived
            data = b"".join(shards[i] for i in range(self.k))
            return data[:data_len]

        # Build the k x k matrix whose rows generated the surviving shards.
        matrix = np.zeros((self.k, self.k), dtype=np.uint8)
        for row, idx in enumerate(indices):
            if idx < self.k:
                matrix[row, idx] = 1
            else:
                matrix[row] = self._cauchy[idx - self.k]
        inverse = _gf_matrix_invert(matrix)

        survivors = np.stack(
            [np.frombuffer(shards[idx], dtype=np.uint8) for idx in indices]
        )
        recovered = np.zeros((self.k, shard_len), dtype=np.uint8)
        for i in range(self.k):
            acc = recovered[i]
            for row in range(self.k):
                factor = int(inverse[i, row])
                if factor:
                    acc ^= gf_mul_bytes(factor, survivors[row])
        return bytes(recovered.reshape(-1))[:data_len]

    def reconstruct_shard(self, shards: dict[int, bytes], target: int, data_len: int) -> bytes:
        """Rebuild exactly one missing shard (what recovery streams to
        the replacement server)."""
        full = self.decode(shards, self.k * len(shards[sorted(shards)[0]]))
        rebuilt = self.encode(full[: data_len or len(full)])
        return rebuilt[target]

    @functools.cached_property
    def storage_overhead(self) -> float:
        """Extra bytes stored per data byte (m/k) — vs 1.0 for mirroring."""
        return self.m / self.k
