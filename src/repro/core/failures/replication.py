"""Failure masking: replicated and erasure-coded buffers (§5).

Both schemes wrap pool buffers with anti-affine placement (every shard
pinned to a different server) so a single host crash removes at most one
shard.  Both are *functional* — they move real bytes, and the recovery
tests assert bit-exact reconstruction — and *timed* — every copy and
parity write crosses the simulated fabric.

* :class:`ReplicatedBuffer` — ``copies`` full mirrors.  Reads prefer
  the replica most local to the requester; writes update all live
  mirrors.  Storage overhead ``copies - 1``.
* :class:`ErasureCodedBuffer` — an RS(k, m) coded object (the Carbink
  design): ``k`` data shards + ``m`` parity shards on ``k+m`` distinct
  servers.  Whole-object put/get (spans, in Carbink's terms); storage
  overhead ``m/k``.
"""

from __future__ import annotations

import typing as _t

from repro.core.buffer import Buffer
from repro.core.failures.erasure import ReedSolomon
from repro.core.pool import LogicalMemoryPool
from repro.errors import ConfigError, MemoryFailureError, RecoveryError
from repro.mem.interleave import PinnedPlacement

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.process import Process


def _allocate_pinned(
    pool: LogicalMemoryPool, size: int, server_id: int, name: str
) -> Buffer:
    """Allocate a buffer entirely on *server_id*."""
    return pool.allocate(
        size,
        requester_id=server_id,
        name=name,
        placement=PinnedPlacement(server_id),
    )


class ReplicatedBuffer:
    """``copies`` byte-identical mirrors on distinct servers."""

    def __init__(
        self,
        pool: LogicalMemoryPool,
        size: int,
        copies: int = 2,
        home_server: int = 0,
        name: str = "replicated",
    ) -> None:
        server_ids = sorted(pool.regions)
        if copies < 2:
            raise ConfigError(f"replication needs >= 2 copies, got {copies}")
        if copies > len(server_ids):
            raise ConfigError(
                f"{copies} copies need {copies} distinct servers, "
                f"pool has {len(server_ids)}"
            )
        self.pool = pool
        self.size = size
        self.name = name
        home_pos = server_ids.index(home_server) if home_server in server_ids else 0
        self.replica_servers = [
            server_ids[(home_pos + r) % len(server_ids)] for r in range(copies)
        ]
        self.replicas: list[Buffer] = [
            _allocate_pinned(pool, size, sid, f"{name}.r{r}")
            for r, sid in enumerate(self.replica_servers)
        ]

    @property
    def storage_overhead(self) -> float:
        return len(self.replicas) - 1.0

    @property
    def fault_budget(self) -> int:
        """Simultaneous un-repaired server losses the scheme masks: all
        but one mirror may die and a live copy still serves reads."""
        return len(self.replicas) - 1

    def live_replicas(self) -> list[int]:
        """Indices of replicas whose server is up."""
        return [
            r
            for r, sid in enumerate(self.replica_servers)
            if self.pool.deployment.server(sid).alive
        ]

    def degraded(self) -> bool:
        return len(self.live_replicas()) < len(self.replicas)

    # -- data path ----------------------------------------------------------------

    def write(self, requester_id: int, offset: int, data: bytes) -> "Process":
        """Update every live mirror; the process returns bytes written."""
        return self.pool.engine.process(
            self._write_body(requester_id, offset, data), name=f"{self.name}.write"
        )

    def _write_body(self, requester_id: int, offset: int, data: bytes):
        live = self.live_replicas()
        if not live:
            raise MemoryFailureError(f"{self.name}: every replica is down")
        writes = [
            self.pool.write(requester_id, self.replicas[r], offset, data) for r in live
        ]
        yield self.pool.engine.all_of(writes)
        return len(data)

    def read(self, requester_id: int, offset: int, size: int) -> "Process":
        """Read from the most local live replica; the process returns bytes."""
        return self.pool.engine.process(
            self._read_body(requester_id, offset, size), name=f"{self.name}.read"
        )

    def _read_body(self, requester_id: int, offset: int, size: int):
        live = self.live_replicas()
        if not live:
            raise MemoryFailureError(f"{self.name}: every replica is down")
        # prefer the replica homed at the requester, then lowest id
        live.sort(
            key=lambda r: (self.replica_servers[r] != requester_id, self.replica_servers[r])
        )
        data = yield self.pool.read(requester_id, self.replicas[live[0]], offset, size)
        return data

    # -- recovery ---------------------------------------------------------------

    def repair(self, requester_id: int) -> "Process":
        """Re-create dead mirrors on spare live servers from a live one;
        the process returns the number of replicas rebuilt."""
        return self.pool.engine.process(
            self._repair_body(requester_id), name=f"{self.name}.repair"
        )

    def _repair_body(self, requester_id: int):
        live = self.live_replicas()
        if not live:
            raise RecoveryError(f"{self.name}: no live replica to repair from")
        dead = [r for r in range(len(self.replicas)) if r not in live]
        if not dead:
            return 0
        in_use = {self.replica_servers[r] for r in live}
        spares = [
            sid
            for sid in sorted(self.pool.regions)
            if sid not in in_use and self.pool.deployment.server(sid).alive
        ]
        rebuilt = 0
        data = yield self.pool.read(requester_id, self.replicas[live[0]], 0, self.size)
        for r in dead:
            if not spares:
                break  # stay degraded; better than colocating shards
            target = spares.pop(0)
            old = self.replicas[r]
            if not old.freed:
                self.pool.free(old)
            fresh = _allocate_pinned(self.pool, self.size, target, f"{self.name}.r{r}")
            yield self.pool.write(target, fresh, 0, data)
            self.replicas[r] = fresh
            self.replica_servers[r] = target
            rebuilt += 1
        return rebuilt

    def release(self) -> None:
        for replica, sid in zip(self.replicas, self.replica_servers):
            if not replica.freed and self.pool.deployment.server(sid).alive:
                self.pool.free(replica)


class ErasureCodedBuffer:
    """An RS(k, m) coded object striped over k+m servers."""

    def __init__(
        self,
        pool: LogicalMemoryPool,
        data_len: int,
        data_shards: int = 2,
        parity_shards: int = 1,
        name: str = "coded",
    ) -> None:
        server_ids = sorted(pool.regions)
        total = data_shards + parity_shards
        if total > len(server_ids):
            raise ConfigError(
                f"RS({data_shards},{parity_shards}) needs {total} distinct "
                f"servers, pool has {len(server_ids)}"
            )
        self.pool = pool
        self.name = name
        self.data_len = data_len
        self.code = ReedSolomon(data_shards, parity_shards)
        self.shard_len = -(-max(data_len, 1) // data_shards)
        self.shard_servers = server_ids[:total]
        self.shards: list[Buffer] = [
            _allocate_pinned(pool, self.shard_len, sid, f"{name}.s{i}")
            for i, sid in enumerate(self.shard_servers)
        ]

    @property
    def storage_overhead(self) -> float:
        return self.code.storage_overhead

    @property
    def fault_budget(self) -> int:
        """Simultaneous un-repaired server losses the scheme masks: any
        ``m`` erasures still decode."""
        return self.code.m

    def live_shards(self) -> list[int]:
        return [
            i
            for i, sid in enumerate(self.shard_servers)
            if self.pool.deployment.server(sid).alive
        ]

    def degraded(self) -> bool:
        return len(self.live_shards()) < len(self.shards)

    # -- data path ----------------------------------------------------------------

    def put(self, requester_id: int, data: bytes) -> "Process":
        """Encode and store the whole object; the process returns the
        total (data + parity) bytes written."""
        if len(data) != self.data_len:
            raise ConfigError(
                f"{self.name} holds exactly {self.data_len} bytes, got {len(data)}"
            )
        return self.pool.engine.process(
            self._put_body(requester_id, data), name=f"{self.name}.put"
        )

    def _put_body(self, requester_id: int, data: bytes):
        encoded = self.code.encode(data)
        writes = []
        for i in self.live_shards():
            writes.append(self.pool.write(requester_id, self.shards[i], 0, encoded[i]))
        yield self.pool.engine.all_of(writes)
        return sum(len(encoded[i]) for i in self.live_shards())

    def get(self, requester_id: int) -> "Process":
        """Fetch and (if degraded) decode the object; the process
        returns the original bytes."""
        return self.pool.engine.process(
            self._get_body(requester_id), name=f"{self.name}.get"
        )

    def _get_body(self, requester_id: int):
        live = self.live_shards()
        if len(live) < self.code.k:
            raise MemoryFailureError(
                f"{self.name}: {len(live)} shards live, need {self.code.k}"
            )
        data_live = [i for i in live if i < self.code.k]
        if len(data_live) == self.code.k:
            chunks = []
            for i in data_live:
                chunk = yield self.pool.read(requester_id, self.shards[i], 0, self.shard_len)
                chunks.append(chunk)
            return b"".join(chunks)[: self.data_len]
        fetched: dict[int, bytes] = {}
        for i in live[: self.code.k + 1]:
            fetched[i] = yield self.pool.read(
                requester_id, self.shards[i], 0, self.shard_len
            )
        return self.code.decode(fetched, self.data_len)

    # -- recovery ---------------------------------------------------------------

    def repair(self, requester_id: int) -> "Process":
        """Rebuild dead shards onto spare servers; the process returns
        the number of shards rebuilt."""
        return self.pool.engine.process(
            self._repair_body(requester_id), name=f"{self.name}.repair"
        )

    def _repair_body(self, requester_id: int):
        live = self.live_shards()
        if len(live) < self.code.k:
            raise RecoveryError(
                f"{self.name}: only {len(live)} shards live, need {self.code.k}"
            )
        dead = [i for i in range(len(self.shards)) if i not in live]
        if not dead:
            return 0
        fetched: dict[int, bytes] = {}
        for i in live[: self.code.k]:
            fetched[i] = yield self.pool.read(
                requester_id, self.shards[i], 0, self.shard_len
            )
        full = self.code.decode(fetched, self.data_len)
        encoded = self.code.encode(full)
        in_use = {self.shard_servers[i] for i in live}
        spares = [
            sid
            for sid in sorted(self.pool.regions)
            if sid not in in_use and self.pool.deployment.server(sid).alive
        ]
        rebuilt = 0
        for i in dead:
            if not spares:
                break
            target = spares.pop(0)
            old = self.shards[i]
            if not old.freed:
                self.pool.free(old)
            fresh = _allocate_pinned(self.pool, self.shard_len, target, f"{self.name}.s{i}")
            yield self.pool.write(target, fresh, 0, encoded[i])
            self.shards[i] = fresh
            self.shard_servers[i] = target
            rebuilt += 1
        return rebuilt

    def release(self) -> None:
        for shard, sid in zip(self.shards, self.shard_servers):
            if not shard.freed and self.pool.deployment.server(sid).alive:
                self.pool.free(shard)
