"""Failure domains (§5 "Failure domains").

"With LMPs, memory failures come from host crashes ... To handle
failures, LMPs can take advantage of similar solutions proposed for
physical pools, such as failure masking through replication or erasure
coding [Carbink], or failure reporting to application through
exceptions."

* :mod:`repro.core.failures.erasure` — systematic Reed–Solomon codes
  over GF(256) (the Carbink approach), built from scratch.
* :mod:`repro.core.failures.replication` — primary/backup replicated
  buffers with anti-affine placement.
* :mod:`repro.core.failures.detector` — heartbeat failure detection on
  the simulated clock.
* :mod:`repro.core.failures.recovery` — reconstruction of a crashed
  server's pooled bytes onto the survivors, with cost accounting.

Unprotected buffers surface :class:`~repro.errors.MemoryFailureError`
on access — the "failure reporting" alternative.
"""

from repro.core.failures.detector import FailureDetector
from repro.core.failures.erasure import ReedSolomon
from repro.core.failures.recovery import RecoveryManager, RecoveryReport
from repro.core.failures.replication import ErasureCodedBuffer, ReplicatedBuffer

__all__ = [
    "ErasureCodedBuffer",
    "FailureDetector",
    "RecoveryManager",
    "RecoveryReport",
    "ReedSolomon",
    "ReplicatedBuffer",
]
