"""Crash recovery orchestration.

The manager keeps a registry of every protected object (replicated or
erasure-coded) plus the unprotected buffers.  When a crash is confirmed,
it repairs what redundancy allows and reports what was lost — the two
§5 outcomes ("failure masking through replication or erasure coding ...
or failure reporting to application through exceptions"), side by side
and with costs attached (bytes reconstructed, simulated repair time).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.buffer import Buffer
from repro.core.failures.replication import ErasureCodedBuffer, ReplicatedBuffer
from repro.core.pool import LogicalMemoryPool
from repro.errors import RecoveryError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.process import Process

Protected = _t.Union[ReplicatedBuffer, ErasureCodedBuffer]


@dataclasses.dataclass(frozen=True)
class ObjectRepair:
    """Repair cost of one protected object."""

    name: str
    shards_rebuilt: int
    bytes_reconstructed: int
    duration_ns: float


@dataclasses.dataclass
class RecoveryReport:
    """Outcome of recovering from one crash."""

    server_id: int
    started_at: float
    duration_ns: float
    objects_repaired: int
    shards_rebuilt: int
    bytes_reconstructed: int
    lost_buffers: list[str]
    per_object: dict[str, ObjectRepair] = dataclasses.field(default_factory=dict)

    @property
    def fully_recovered(self) -> bool:
        return not self.lost_buffers


class RecoveryManager:
    """Registry + repair driver."""

    def __init__(self, pool: LogicalMemoryPool, coordinator_id: int = 0) -> None:
        self.pool = pool
        self.coordinator_id = coordinator_id
        self._protected: list[Protected] = []
        self._unprotected: list[Buffer] = []
        self.reports: list[RecoveryReport] = []

    def register(self, obj: Protected) -> None:
        self._protected.append(obj)

    def register_unprotected(self, buffer: Buffer) -> None:
        self._unprotected.append(buffer)

    # -- crash handling ------------------------------------------------------------

    def handle_crash(self, server_id: int) -> "Process":
        """Repair every degraded protected object and tally the losses;
        the process returns a :class:`RecoveryReport`."""
        return self.pool.engine.process(
            self._handle_body(server_id), name=f"recovery.s{server_id}"
        )

    def _handle_body(self, server_id: int):
        engine = self.pool.engine
        started = engine.now
        coordinator = self.coordinator_id
        if coordinator == server_id or not self.pool.deployment.server(coordinator).alive:
            survivors = [
                sid
                for sid in sorted(self.pool.regions)
                if self.pool.deployment.server(sid).alive
            ]
            if not survivors:
                raise RecoveryError("no live server can coordinate recovery")
            coordinator = survivors[0]

        objects_repaired = 0
        shards_rebuilt = 0
        bytes_reconstructed = 0
        per_object: dict[str, ObjectRepair] = {}
        for obj in self._protected:
            if not obj.degraded():
                continue
            repair_started = engine.now
            rebuilt = yield obj.repair(coordinator)
            if rebuilt:
                objects_repaired += 1
                shards_rebuilt += rebuilt
                if isinstance(obj, ReplicatedBuffer):
                    obj_bytes = rebuilt * obj.size
                else:
                    obj_bytes = rebuilt * obj.shard_len
                bytes_reconstructed += obj_bytes
                per_object[obj.name] = ObjectRepair(
                    name=obj.name,
                    shards_rebuilt=rebuilt,
                    bytes_reconstructed=obj_bytes,
                    duration_ns=engine.now - repair_started,
                )

        lost: list[str] = []
        for buffer in self._unprotected:
            if buffer.freed:
                continue
            owners = self.pool.extents_by_owner(buffer)
            if server_id in owners:
                lost.append(buffer.name or f"0x{buffer.base.value:x}")

        report = RecoveryReport(
            server_id=server_id,
            started_at=started,
            duration_ns=engine.now - started,
            objects_repaired=objects_repaired,
            shards_rebuilt=shards_rebuilt,
            bytes_reconstructed=bytes_reconstructed,
            lost_buffers=lost,
            per_object=per_object,
        )
        self.reports.append(report)
        return report
