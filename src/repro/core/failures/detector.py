"""Heartbeat failure detection.

Every server is expected to heartbeat each *interval*; a monitor marks
a server failed after *miss_threshold* consecutive missed beats.  The
detector runs on the simulated clock, so detection latency (interval x
threshold, plus phase) is a measured quantity the recovery bench can
report, not an assumption.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigError
from repro.topology.builder import Deployment
from repro.units import ms

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.process import Process


@dataclasses.dataclass(frozen=True)
class Detection:
    """One confirmed failure."""

    server_id: int
    detected_at: float
    missed_beats: int


class FailureDetector:
    """Centralized heartbeat monitor."""

    def __init__(
        self,
        deployment: Deployment,
        interval: float = ms(10),
        miss_threshold: int = 3,
    ) -> None:
        if interval <= 0:
            raise ConfigError(f"interval must be positive, got {interval}")
        if miss_threshold < 1:
            raise ConfigError(f"miss_threshold must be >= 1, got {miss_threshold}")
        self.deployment = deployment
        self.engine = deployment.engine
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.detections: dict[int, Detection] = {}
        self._missed: dict[int, int] = {s.server_id: 0 for s in deployment.servers}
        self._callbacks: list[_t.Callable[[Detection], None]] = []

    def on_failure(self, callback: _t.Callable[[Detection], None]) -> None:
        """Register a callback fired at detection time (e.g. kick recovery)."""
        self._callbacks.append(callback)

    def monitor(self, duration: float) -> "Process":
        """Watch for *duration* ns; the process returns the detections
        made during the window."""
        return self.engine.process(self._monitor_body(duration), name="detector")

    def _monitor_body(self, duration: float):
        ticks = max(1, int(duration // self.interval))
        found: list[Detection] = []
        for _tick in range(ticks):
            yield self.engine.timeout(self.interval)
            for server in self.deployment.servers:
                sid = server.server_id
                if sid in self.detections:
                    continue
                if server.alive:
                    self._missed[sid] = 0  # heartbeat arrived
                    continue
                self._missed[sid] += 1
                if self._missed[sid] >= self.miss_threshold:
                    detection = Detection(
                        server_id=sid,
                        detected_at=self.engine.now,
                        missed_beats=self._missed[sid],
                    )
                    self.detections[sid] = detection
                    found.append(detection)
                    for callback in self._callbacks:
                        callback(detection)
        return found

    def detection_latency(self, server_id: int, crash_time: float) -> float:
        """ns between the crash and its confirmation."""
        detection = self.detections.get(server_id)
        if detection is None:
            raise ConfigError(f"server {server_id} was never detected as failed")
        return detection.detected_at - crash_time
