"""Memory pools: the logical pool (the paper's proposal) and the
physical pool baselines it is evaluated against.

All pools share one API:

* :meth:`MemoryPool.allocate` / :meth:`MemoryPool.free` — buffers in a
  global logical address space,
* :meth:`MemoryPool.access_segments` — the *performance* data path: turn
  a buffer range into the chain-of-capacities segments a
  :class:`~repro.hw.cpu.Core` streams (who owns the bytes, what fabric
  hops they cross, at what loaded latency),
* :meth:`MemoryPool.read` / :meth:`MemoryPool.write` — the *functional*
  data path moving real bytes (used by the correctness tests, the
  KV-store workload, and the failure-recovery machinery).

The differences between the three §4.1 configurations live entirely in
how these methods resolve:

====================  =========================  =============================
                      LogicalMemoryPool          PhysicalMemoryPool
====================  =========================  =============================
bytes live in         servers' shared regions    the pool box
local accesses        whenever the extent         never (pool is always
                      resolves to the requester   across the fabric)
allocation limit      sum of shared regions       pool box capacity
                      (flexible, §4.5)            (fixed at deployment)
caching               n/a (already local)         optional local page cache
                                                  (the "Physical cache" setup)
====================  =========================  =============================
"""

from __future__ import annotations

import abc
import typing as _t

from repro.core.addressing import AddressTranslator
from repro.core.buffer import Buffer
from repro.core.regions import RegionManager
from repro.errors import (
    AddressError,
    CapacityError,
    ConfigError,
    InfeasibleWorkloadError,
    MemoryFailureError,
    MigrationError,
)
from repro.hw.cache import PageCache
from repro.hw.cpu import AccessSegment
from repro.mem.arena.protocol import make_allocator
from repro.mem.interleave import LocalFirstPlacement, PlacementPolicy
from repro.mem.layout import GlobalAddress, PageGeometry
from repro.mem.page_table import Protection
from repro.topology.builder import Deployment
from repro.topology.specs import DeploymentKind

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.profiling import AccessProfiler
    from repro.sim.process import Process


class MemoryPool(abc.ABC):
    """Common machinery for every pool flavor."""

    def __init__(self, deployment: Deployment, geometry: PageGeometry | None = None) -> None:
        self.deployment = deployment
        self.engine = deployment.engine
        self.fluid = deployment.fluid
        self.switch = deployment.switch
        self.transport = deployment.transport
        self.geometry = geometry or PageGeometry()
        self.profiler: "AccessProfiler | None" = None
        self._buffers: dict[int, Buffer] = {}  # base address -> live buffer
        self._next_extent = 0
        self._free_extents: list[int] = []

    # -- logical address space -------------------------------------------------

    def _take_extents(self, count: int) -> list[int]:
        """Reserve *count* logical extent indices (reusing freed ones)."""
        taken: list[int] = []
        while self._free_extents and len(taken) < count:
            taken.append(self._free_extents.pop())
        while len(taken) < count:
            taken.append(self._next_extent)
            self._next_extent += 1
        return sorted(taken)

    def _take_contiguous_extents(self, count: int) -> list[int]:
        """Reserve a contiguous run of extent indices so buffers get
        contiguous logical addresses (bump allocation; freed runs are
        reused only when exactly contiguous)."""
        base = self._next_extent
        self._next_extent += count
        return list(range(base, base + count))

    def attach_profiler(self, profiler: "AccessProfiler") -> None:
        """Register the profiler that access planning feeds."""
        self.profiler = profiler

    def buffer_at(self, base: GlobalAddress | int) -> Buffer:
        try:
            return self._buffers[int(base)]
        except KeyError:
            raise AddressError(f"no live buffer at {int(base):#x}") from None

    @property
    def live_buffers(self) -> list[Buffer]:
        return [self._buffers[k] for k in sorted(self._buffers)]

    # -- abstract API --------------------------------------------------------

    @abc.abstractmethod
    def allocate(
        self,
        size: int,
        requester_id: int | None = None,
        name: str = "",
    ) -> Buffer:
        """Allocate *size* bytes of pooled memory; raises
        :class:`CapacityError` when the pool cannot hold them."""

    @abc.abstractmethod
    def free(self, buffer: Buffer) -> None:
        """Release a buffer's backing."""

    @abc.abstractmethod
    def access_segments(
        self,
        requester_id: int,
        buffer: Buffer,
        offset: int = 0,
        size: int | None = None,
        write: bool = False,
    ) -> list[AccessSegment]:
        """Build the streaming plan for one access to [offset, offset+size)."""

    @abc.abstractmethod
    def read(self, requester_id: int, buffer: Buffer, offset: int, size: int) -> "Process":
        """Functional read; the returned process yields the bytes."""

    @abc.abstractmethod
    def write(self, requester_id: int, buffer: Buffer, offset: int, data: bytes) -> "Process":
        """Functional write; the returned process yields bytes written."""

    @abc.abstractmethod
    def locality_fraction(self, requester_id: int, buffer: Buffer) -> float:
        """Fraction of the buffer resolving to *requester_id*'s DRAM."""

    @property
    @abc.abstractmethod
    def pooled_bytes(self) -> int:
        """Total disaggregated capacity."""

    @property
    @abc.abstractmethod
    def pooled_free_bytes(self) -> int:
        """Unallocated disaggregated capacity."""


class LogicalMemoryPool(MemoryPool):
    """The paper's proposal: the pool is the union of per-server shared
    regions; placement decides which server backs each extent."""

    def __init__(
        self,
        deployment: Deployment,
        geometry: PageGeometry | None = None,
        placement: PlacementPolicy | None = None,
        shared_fraction: float = 1.0,
        coherent_bytes: int = 0,
    ) -> None:
        if deployment.kind is not DeploymentKind.LOGICAL:
            raise ConfigError(
                f"LogicalMemoryPool needs a logical deployment, got {deployment.kind.value}"
            )
        if not 0.0 < shared_fraction <= 1.0:
            raise ConfigError(f"shared_fraction must be in (0, 1], got {shared_fraction}")
        super().__init__(deployment, geometry)
        self.placement = placement or LocalFirstPlacement()
        self.translator = AddressTranslator(self.geometry)
        self.regions: dict[int, RegionManager] = {}
        page = self.geometry.page_bytes
        for server in deployment.servers:
            self.translator.register_server(server.server_id)
            aligned = server.dram.capacity_bytes // page * page
            coherent = coherent_bytes // page * page
            shared = int(server.dram.capacity_bytes * shared_fraction) // page * page
            shared = min(shared, aligned - coherent)  # leave room for the coherent carve
            self.regions[server.server_id] = RegionManager(
                server, self.geometry, shared_bytes=shared, coherent_bytes=coherent
            )
        #: extent index -> list of frame offsets backing its pages
        self._extent_frames: dict[int, list[int]] = {}
        self._buffer_extents: dict[int, list[int]] = {}
        #: extents mid-migration/relocation: a free() racing the move
        #: defers the teardown to the mover instead of yanking pages out
        #: from under an in-flight copy
        self._pinned_extents: set[int] = set()
        self._doomed_extents: set[int] = set()

    # -- capacity -----------------------------------------------------------------

    @property
    def pooled_bytes(self) -> int:
        return sum(r.shared_bytes for r in self.regions.values())

    @property
    def pooled_free_bytes(self) -> int:
        return sum(r.shared_free_bytes for r in self.regions.values())

    def shared_free_by_server(self) -> dict[int, int]:
        """Free shared capacity per *live* server — a crashed host's
        memory is gone from the pool (§5 failure domains)."""
        return {
            sid: r.shared_free_bytes
            for sid, r in self.regions.items()
            if self.deployment.server(sid).alive
        }

    def potential_free_by_server(self) -> dict[int, int]:
        """Free shared capacity *plus* private memory each live server
        could still flex into the pool — what placement sees, since the
        ratio is dynamic (§4.5)."""
        return {
            sid: r.shared_free_bytes + r.growable_bytes()
            for sid, r in self.regions.items()
            if self.deployment.server(sid).alive
        }

    # -- allocate / free --------------------------------------------------------

    def allocate(
        self,
        size: int,
        requester_id: int | None = None,
        name: str = "",
        placement: PlacementPolicy | None = None,
    ) -> Buffer:
        """Allocate pooled memory.

        *placement* overrides the pool's default policy for this one
        buffer — e.g. a distributed consumer asks for round-robin while
        the pool default stays local-first."""
        if size <= 0:
            raise CapacityError(f"allocation size must be positive, got {size}")
        extent_bytes = self.geometry.extent_bytes
        extent_count = -(-size // extent_bytes)
        potential = self.potential_free_by_server()
        if extent_count * extent_bytes > sum(potential.values()):
            raise InfeasibleWorkloadError(
                f"buffer of {size} bytes needs {extent_count} extents "
                f"({extent_count * extent_bytes} bytes); pool can offer at "
                f"most {sum(potential.values())}"
            )
        policy = placement or self.placement
        owners = policy.place(extent_count, extent_bytes, potential, requester_id)
        extents = self._take_contiguous_extents(extent_count)
        pages_per_extent = self.geometry.pages_per_extent
        for extent_index, owner in zip(extents, owners):
            # the ratio is dynamic: flex private memory into the shared
            # region on demand (§4.5)
            self.regions[owner].ensure_shared_free(extent_bytes)
            frames = self.regions[owner].allocate_frames(pages_per_extent)
            self.translator.global_map.claim(extent_index, owner)
            table = self.translator.page_table(owner)
            first_page = extent_index * pages_per_extent
            for page_index, frame in zip(range(first_page, first_page + pages_per_extent), frames):
                table.map_page(page_index, frame, Protection.RW)
            self._extent_frames[extent_index] = frames
        base = GlobalAddress(extents[0] * extent_bytes)
        buffer = Buffer(base=base, size=size, geometry=self.geometry, name=name)
        self._buffers[base.value] = buffer
        self._buffer_extents[base.value] = extents
        return buffer

    def free(self, buffer: Buffer) -> None:
        extents = self._buffer_extents.pop(buffer.base.value, None)
        if extents is None:
            raise AddressError(f"buffer {buffer!r} is not live in this pool")
        for extent_index in extents:
            if extent_index in self._pinned_extents:
                # a migration/relocation holds this extent; it tears the
                # extent down (and returns the capacity) when it unpins
                self._doomed_extents.add(extent_index)
                continue
            self._teardown_extent(extent_index)
        del self._buffers[buffer.base.value]
        buffer.freed = True

    def _teardown_extent(self, extent_index: int) -> None:
        """Unmap one extent's pages and return its frames and index.

        Frame offsets come from the page-table entries, not the cached
        ``_extent_frames`` list: a half-finished relocation may have
        committed some pages to new frames already, and the entries are
        the authority on which frames actually back the data now."""
        pages_per_extent = self.geometry.pages_per_extent
        owner = self.translator.global_map.lookup_extent(extent_index).server_id
        table = self.translator.page_table(owner)
        first_page = extent_index * pages_per_extent
        freed: list[int] = []
        for page_index in range(first_page, first_page + pages_per_extent):
            freed.append(table.unmap_page(page_index).frame_offset)
        self.regions[owner].free_frames(freed)
        self._extent_frames.pop(extent_index, None)
        self.translator.global_map.release(extent_index)
        self._free_extents.append(extent_index)

    def _unpin_extent(self, extent_index: int) -> None:
        """Drop a mover's pin; run the teardown a racing free deferred."""
        self._pinned_extents.discard(extent_index)
        if extent_index in self._doomed_extents:
            self._doomed_extents.discard(extent_index)
            self._teardown_extent(extent_index)

    # -- performance data path ------------------------------------------------------

    def access_segments(
        self,
        requester_id: int,
        buffer: Buffer,
        offset: int = 0,
        size: int | None = None,
        write: bool = False,
    ) -> list[AccessSegment]:
        size = buffer.size - offset if size is None else size
        addr, _ = buffer.slice_addresses(offset, size)
        requester = self.deployment.server(requester_id)
        segments: list[AccessSegment] = []
        for owner, start, length in self.translator.segments_by_owner(addr, size):
            owner_server = self.deployment.server(owner)
            if not owner_server.alive:
                raise MemoryFailureError(
                    f"extent owner {owner_server.name} is down", server_id=owner
                )
            if write:
                route = self.switch.write_route(requester.name, owner_server.name)
            else:
                route = self.switch.read_route(requester.name, owner_server.name)
            segments.append(
                AccessSegment(
                    path=route.path,
                    nbytes=length,
                    latency_fn=route.latency_fn,
                    label="local" if owner == requester_id else f"remote{owner}",
                )
            )
            if self.profiler is not None:
                # attribute bytes to each extent the run covers, so the
                # balancer sees per-extent heat rather than run-start heat
                for extent_index in self.geometry.extents_covering(start, length):
                    extent_start = extent_index * self.geometry.extent_bytes
                    extent_end = extent_start + self.geometry.extent_bytes
                    covered = min(extent_end, start + length) - max(extent_start, start)
                    self.profiler.record(
                        requester_id,
                        extent_index,
                        covered,
                        remote=owner != requester_id,
                    )
        return segments

    def locality_fraction(self, requester_id: int, buffer: Buffer) -> float:
        local = 0
        for owner, _start, length in self.translator.segments_by_owner(
            buffer.base, buffer.size
        ):
            if owner == requester_id:
                local += length
        return local / buffer.size

    def extents_by_owner(self, buffer: Buffer) -> dict[int, list[int]]:
        """owner server -> extent indices of this buffer (for compute
        shipping's shard discovery)."""
        out: dict[int, list[int]] = {}
        for extent_index in self._buffer_extents[buffer.base.value]:
            owner = self.translator.global_map.lookup_extent(extent_index).server_id
            out.setdefault(owner, []).append(extent_index)
        return out

    # -- functional data path ----------------------------------------------------

    def read(self, requester_id: int, buffer: Buffer, offset: int, size: int) -> "Process":
        addr, _ = buffer.slice_addresses(offset, size)
        return self.engine.process(
            self._read_body(requester_id, addr, size), name="lmp.read"
        )

    def _read_body(self, requester_id: int, addr: GlobalAddress, size: int):
        requester = self.deployment.server(requester_id)
        chunks: list[bytes] = []
        pos = int(addr)
        end = pos + size
        while pos < end:
            page_take = self.geometry.page_bytes - self.geometry.page_offset(pos)
            take = min(page_take, end - pos)
            translation = self.translator.translate(requester_id, pos, write=False)
            owner_server = self.deployment.server(translation.server_id)
            if not owner_server.alive:
                raise MemoryFailureError(
                    f"read touched crashed server {owner_server.name}",
                    server_id=translation.server_id,
                )
            if self.profiler is not None:
                self.profiler.record(
                    requester_id,
                    self.geometry.extent_index(pos),
                    take,
                    remote=translation.remote,
                )
            data = yield self.transport.read(
                requester.name, owner_server.name, translation.dram_offset, take
            )
            chunks.append(data)
            pos += take
        return b"".join(chunks)

    def write(self, requester_id: int, buffer: Buffer, offset: int, data: bytes) -> "Process":
        addr, _ = buffer.slice_addresses(offset, len(data))
        return self.engine.process(
            self._write_body(requester_id, addr, data), name="lmp.write"
        )

    def _write_body(self, requester_id: int, addr: GlobalAddress, data: bytes):
        requester = self.deployment.server(requester_id)
        pos = int(addr)
        written = 0
        while written < len(data):
            page_take = self.geometry.page_bytes - self.geometry.page_offset(pos)
            take = min(page_take, len(data) - written)
            translation = self.translator.translate(requester_id, pos, write=True)
            owner_server = self.deployment.server(translation.server_id)
            if not owner_server.alive:
                raise MemoryFailureError(
                    f"write touched crashed server {owner_server.name}",
                    server_id=translation.server_id,
                )
            if self.profiler is not None:
                self.profiler.record(
                    requester_id,
                    self.geometry.extent_index(pos),
                    take,
                    remote=translation.remote,
                )
            yield self.transport.write(
                requester.name,
                owner_server.name,
                translation.dram_offset,
                bytes(data[written : written + take]),
            )
            pos += take
            written += take
        return written

    # -- migration mechanism (policy lives in repro.core.migration) ----------------

    def migrate_extent(self, extent_index: int, dst_server_id: int) -> "Process":
        """Move one extent's pages to *dst_server_id*, preserving logical
        addresses.  Two phases: bulk copy (concurrent writes allowed,
        tracked via dirty bits), then a bounded re-copy loop and an
        atomic commit (remap + global-map generation bump)."""
        return self.engine.process(
            self._migrate_body(extent_index, dst_server_id),
            name=f"migrate.ext{extent_index}",
        )

    def _migrate_body(self, extent_index: int, dst_server_id: int):
        if (
            extent_index not in self._extent_frames
            or extent_index in self._pinned_extents
        ):
            return 0  # freed before we started, or another mover owns it
        entry = self.translator.global_map.lookup_extent(extent_index)
        src_id = entry.server_id
        if src_id == dst_server_id:
            return 0
        src = self.deployment.server(src_id)
        dst = self.deployment.server(dst_server_id)
        if not dst.alive:
            raise MemoryFailureError(
                f"migration target {dst.name} is down", server_id=dst_server_id
            )
        pages_per_extent = self.geometry.pages_per_extent
        page_bytes = self.geometry.page_bytes
        first_page = extent_index * pages_per_extent
        src_table = self.translator.page_table(src_id)
        self.regions[dst_server_id].ensure_shared_free(self.geometry.extent_bytes)
        dst_frames = self.regions[dst_server_id].allocate_frames(pages_per_extent)
        self._pinned_extents.add(extent_index)
        try:
            # Phase 1: bulk copy every page, clearing dirty bits as we go so
            # writes racing the copy are detected.
            page_to_dst: dict[int, int] = {}
            for page_index, dst_frame in zip(
                range(first_page, first_page + pages_per_extent), dst_frames
            ):
                page_to_dst[page_index] = dst_frame
                src_entry = src_table.entry(page_index)
                src_entry.dirty = False
                yield self.transport.copy(
                    src.name, src_entry.frame_offset, dst.name, dst_frame, page_bytes
                )
                if extent_index in self._doomed_extents:
                    # the buffer was freed mid-copy: nothing left to move
                    self.regions[dst_server_id].free_frames(dst_frames)
                    return 0

            # Phase 2: bounded re-copy of pages dirtied during phase 1.
            for _round in range(3):
                dirty = [
                    p
                    for p in range(first_page, first_page + pages_per_extent)
                    if src_table.entry(p).dirty
                ]
                if not dirty:
                    break
                for page_index in dirty:
                    src_entry = src_table.entry(page_index)
                    src_entry.dirty = False
                    yield self.transport.copy(
                        src.name,
                        src_entry.frame_offset,
                        dst.name,
                        page_to_dst[page_index],
                        page_bytes,
                    )
                    if extent_index in self._doomed_extents:
                        self.regions[dst_server_id].free_frames(dst_frames)
                        return 0

            # Either endpoint may have died while we were copying.  A dead
            # destination aborts cleanly (the source stays authoritative);
            # a dead source means the extent's bytes are gone — committing a
            # zero-filled destination copy would be silent corruption.
            if not dst.alive:
                self.regions[dst_server_id].free_frames(dst_frames)
                raise MigrationError(
                    f"migration of extent {extent_index} aborted: target "
                    f"{dst.name} crashed mid-copy (source copy remains authoritative)"
                )
            if not src.alive:
                self.regions[dst_server_id].free_frames(dst_frames)
                raise MemoryFailureError(
                    f"extent {extent_index} lost: source {src.name} crashed "
                    "mid-migration before the copy committed",
                    server_id=src_id,
                )

            # Commit: remap atomically (single simulation instant).
            dst_table = self.translator.page_table(dst_server_id)
            src_frames: list[int] = []
            for page_index in range(first_page, first_page + pages_per_extent):
                src_entry = src_table.unmap_page(page_index)
                src_frames.append(src_entry.frame_offset)
                dst_table.map_page(page_index, page_to_dst[page_index], src_entry.protection)
            self.regions[src_id].free_frames(src_frames)
            self.translator.global_map.reassign(extent_index, dst_server_id)
            self._extent_frames[extent_index] = [
                page_to_dst[p] for p in range(first_page, first_page + pages_per_extent)
            ]
            return pages_per_extent * page_bytes
        finally:
            self._unpin_extent(extent_index)


    def relocate_extent_locally(self, extent_index: int) -> "Process":
        """Move an extent's pages to other frames on the *same* server
        (compaction), freeing its current frames — how a hot extent
        escapes a region shrink without losing locality."""
        return self.engine.process(
            self._relocate_body(extent_index), name=f"relocate.ext{extent_index}"
        )

    def _relocate_body(self, extent_index: int):
        if (
            extent_index not in self._extent_frames
            or extent_index in self._pinned_extents
        ):
            return 0  # freed before we started, or another mover owns it
        owner = self.translator.global_map.lookup_extent(extent_index).server_id
        server = self.deployment.server(owner)
        pages_per_extent = self.geometry.pages_per_extent
        page_bytes = self.geometry.page_bytes
        first_page = extent_index * pages_per_extent
        table = self.translator.page_table(owner)
        new_frames = self.regions[owner].allocate_frames(pages_per_extent, highest=True)
        self._pinned_extents.add(extent_index)
        moved = 0
        old_frames: list[int] = []
        try:
            for page_index, new_frame in zip(
                range(first_page, first_page + pages_per_extent), new_frames
            ):
                entry = table.entry(page_index)
                old_frames.append(entry.frame_offset)
                yield self.transport.copy(
                    server.name, entry.frame_offset, server.name, new_frame, page_bytes
                )
                if extent_index in self._doomed_extents:
                    # freed mid-compaction: stop committing; pages already
                    # moved keep their new frames (entries are authoritative)
                    old_frames.pop()
                    break
                entry.frame_offset = new_frame
                moved += 1
            # superseded old frames, and new frames we never committed to
            self.regions[owner].free_frames(old_frames[:moved])
            self.regions[owner].free_frames(new_frames[moved:])
            if extent_index in self._extent_frames:
                self._extent_frames[extent_index] = [
                    table.entry(p).frame_offset
                    for p in range(first_page, first_page + pages_per_extent)
                ]
            return moved * page_bytes
        finally:
            self._unpin_extent(extent_index)


class PhysicalMemoryPool(MemoryPool):
    """The baseline: pooled bytes live in a separate pool box.

    ``deployment.kind`` selects the §4.1 variant: ``PHYSICAL_CACHE``
    gives every server a page cache of pooled data in its local DRAM;
    ``PHYSICAL_NOCACHE`` reads the pool over the fabric every time.
    """

    def __init__(
        self,
        deployment: Deployment,
        geometry: PageGeometry | None = None,
        cache_fraction: float = 1.0,
        allocator: str = "first-fit",
    ) -> None:
        if not deployment.kind.is_physical or deployment.pool is None:
            raise ConfigError(
                f"PhysicalMemoryPool needs a physical deployment, got {deployment.kind.value}"
            )
        if not 0.0 < cache_fraction <= 1.0:
            raise ConfigError(f"cache_fraction must be in (0, 1], got {cache_fraction}")
        super().__init__(deployment, geometry)
        self.pool_device = deployment.pool
        # any registered strategy can manage the pool box's range; the
        # logical pool has no such knob because its backing store is the
        # per-server frame sets of RegionManager, not a byte range
        self.allocator_name = allocator
        self._allocator = make_allocator(
            allocator,
            self.pool_device.dram.capacity_bytes,
            align=self.geometry.page_bytes,
        )
        self._buffer_backing: dict[int, _t.Any] = {}
        self.caches: dict[int, PageCache] = {}
        if deployment.kind is DeploymentKind.PHYSICAL_CACHE:
            for server in deployment.servers:
                cache_bytes = int(server.dram.capacity_bytes * cache_fraction)
                self.caches[server.server_id] = PageCache(
                    cache_bytes,
                    page_bytes=deployment.spec.cache_page_bytes,
                    name=f"{server.name}.cache",
                )

    @property
    def uses_cache(self) -> bool:
        return bool(self.caches)

    # -- capacity -----------------------------------------------------------------

    @property
    def pooled_bytes(self) -> int:
        return self.pool_device.dram.capacity_bytes

    @property
    def pooled_free_bytes(self) -> int:
        return self._allocator.bytes_free

    # -- allocate / free --------------------------------------------------------

    def allocate(
        self,
        size: int,
        requester_id: int | None = None,
        name: str = "",
        placement: PlacementPolicy | None = None,
    ) -> Buffer:
        if placement is not None:
            raise ConfigError(
                "physical pools have no placement choice: every byte lives "
                "in the pool box (the §4.5 inflexibility)"
            )
        if size <= 0:
            raise CapacityError(f"allocation size must be positive, got {size}")
        if size > self.pooled_free_bytes:
            raise InfeasibleWorkloadError(
                f"buffer of {size} bytes does not fit the physical pool "
                f"({self.pooled_free_bytes} free of {self.pooled_bytes}); "
                "the pool's capacity is fixed at deployment time — the "
                "paper's Figure 5 scenario"
            )
        try:
            allocation = self._allocator.allocate(size)
        except CapacityError as exc:
            raise InfeasibleWorkloadError(str(exc)) from exc
        extent_bytes = self.geometry.extent_bytes
        extent_count = -(-size // extent_bytes)
        extents = self._take_contiguous_extents(extent_count)
        base = GlobalAddress(extents[0] * extent_bytes)
        buffer = Buffer(base=base, size=size, geometry=self.geometry, name=name)
        self._buffers[base.value] = buffer
        self._buffer_backing[base.value] = allocation
        return buffer

    def free(self, buffer: Buffer) -> None:
        allocation = self._buffer_backing.pop(buffer.base.value, None)
        if allocation is None:
            raise AddressError(f"buffer {buffer!r} is not live in this pool")
        self._allocator.free(allocation)
        del self._buffers[buffer.base.value]
        buffer.freed = True
        # pooled pages cached on servers are now meaningless
        for cache in self.caches.values():
            for page_id in range(
                allocation.offset // cache.page_bytes,
                -(-allocation.end // cache.page_bytes),
            ):
                cache.invalidate(page_id)

    def _pool_offset(self, buffer: Buffer, offset: int) -> int:
        allocation = self._buffer_backing[buffer.base.value]
        return allocation.offset + offset

    # -- performance data path ------------------------------------------------------

    def access_segments(
        self,
        requester_id: int,
        buffer: Buffer,
        offset: int = 0,
        size: int | None = None,
        write: bool = False,
    ) -> list[AccessSegment]:
        size = buffer.size - offset if size is None else size
        buffer.slice_addresses(offset, size)  # validates
        if not self.pool_device.alive:
            raise MemoryFailureError("the physical pool is down")
        requester = self.deployment.server(requester_id)
        if write:
            route = self.switch.write_route(requester.name, self.pool_device.name)
        else:
            route = self.switch.read_route(requester.name, self.pool_device.name)

        cache = self.caches.get(requester_id)
        if cache is None:
            segment = AccessSegment(
                path=route.path,
                nbytes=size,
                latency_fn=route.latency_fn,
                label="pool",
            )
            if self.profiler is not None:
                self.profiler.record(
                    requester_id, self.geometry.extent_index(buffer.base), size, remote=True
                )
            return [segment]

        # Physical cache: misses are filled from the pool into local DRAM
        # (the upfront memcpy), then served locally; dirty evictions write
        # back to the pool.
        pool_offset = self._pool_offset(buffer, offset)
        outcome = cache.access_range(pool_offset, size, write=write)
        local_route = self.switch.read_route(requester.name, requester.name)
        fill_route = self.switch.copy_route(self.pool_device.name, requester.name)
        segments: list[AccessSegment] = []
        if outcome.writeback_pages:
            writeback_route = self.switch.copy_route(requester.name, self.pool_device.name)
            segments.append(
                AccessSegment(
                    path=writeback_route.path,
                    nbytes=outcome.writeback_pages * cache.page_bytes,
                    latency_fn=writeback_route.latency_fn,
                    label="writeback",
                )
            )
        segments.append(
            AccessSegment(
                path=local_route.path,
                nbytes=size,
                latency_fn=local_route.latency_fn,
                label="cached",
                fill_path=fill_route.path if outcome.miss_pages else None,
                fill_bytes=outcome.miss_pages * cache.page_bytes,
                fill_latency_fn=fill_route.latency_fn,
            )
        )
        if self.profiler is not None:
            self.profiler.record(
                requester_id,
                self.geometry.extent_index(buffer.base),
                size,
                remote=outcome.miss_pages > 0,
            )
        return segments

    def locality_fraction(self, requester_id: int, buffer: Buffer) -> float:
        """Pooled bytes are never local to a server in a physical pool."""
        return 0.0

    # -- functional data path ----------------------------------------------------

    def read(self, requester_id: int, buffer: Buffer, offset: int, size: int) -> "Process":
        buffer.slice_addresses(offset, size)
        return self.engine.process(
            self._read_body(requester_id, buffer, offset, size), name="pmp.read"
        )

    def _read_body(self, requester_id: int, buffer: Buffer, offset: int, size: int):
        if not self.pool_device.alive:
            raise MemoryFailureError("the physical pool is down")
        requester = self.deployment.server(requester_id)
        pool_offset = self._pool_offset(buffer, offset)
        cache = self.caches.get(requester_id)
        if cache is not None:
            outcome = cache.access_range(pool_offset, size)
            if outcome.miss_pages:
                # fill the missing pages from the pool (the upfront memcpy)
                fill_route = self.switch.copy_route(self.pool_device.name, requester.name)
                yield self.engine.timeout(fill_route.loaded_latency())
                yield self.fluid.transfer(
                    fill_route.path,
                    outcome.miss_pages * cache.page_bytes,
                    tag="cache.fill",
                )
            # serve the bytes from local DRAM at local latency
            local_route = self.switch.read_route(requester.name, requester.name)
            yield self.engine.timeout(local_route.loaded_latency())
            yield self.fluid.transfer(local_route.path, size, tag="cache.read")
            return self.pool_device.dram.read_bytes(pool_offset, size)
        data = yield self.transport.read(
            requester.name, self.pool_device.name, pool_offset, size
        )
        return data

    def write(self, requester_id: int, buffer: Buffer, offset: int, data: bytes) -> "Process":
        buffer.slice_addresses(offset, len(data))
        return self.engine.process(
            self._write_body(requester_id, buffer, offset, data), name="pmp.write"
        )

    def _write_body(self, requester_id: int, buffer: Buffer, offset: int, data: bytes):
        if not self.pool_device.alive:
            raise MemoryFailureError("the physical pool is down")
        requester = self.deployment.server(requester_id)
        written = yield self.transport.write(
            requester.name, self.pool_device.name, self._pool_offset(buffer, offset), data
        )
        return written


def pool_for(deployment: Deployment, **kwargs: _t.Any) -> MemoryPool:
    """Build the pool flavor matching the deployment's kind."""
    if deployment.kind is DeploymentKind.LOGICAL:
        return LogicalMemoryPool(deployment, **kwargs)
    return PhysicalMemoryPool(deployment, **kwargs)
