"""Operator introspection: what is the pool doing right now?

A deployment running for hours of simulated time accumulates state an
operator needs to see: per-server region splits and utilization,
extent ownership distribution, buffer inventory, translation health,
migration history.  ``describe_pool`` gathers it into one structured
snapshot, and ``render_pool`` prints the dashboards the examples show.

Everything here is read-only and cheap — safe to call from background
loops or test assertions.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.analysis.report import format_table
from repro.core.pool import LogicalMemoryPool
from repro.units import fmt_size


@dataclasses.dataclass(frozen=True)
class ServerSnapshot:
    """One server's region and ownership state."""

    server_id: int
    alive: bool
    private_bytes: int
    coherent_bytes: int
    shared_bytes: int
    shared_used_bytes: int
    extents_owned: int
    resize_events: int

    @property
    def shared_utilization(self) -> float:
        if self.shared_bytes == 0:
            return 0.0
        return self.shared_used_bytes / self.shared_bytes


@dataclasses.dataclass(frozen=True)
class PoolSnapshot:
    """A point-in-time view of a logical pool."""

    taken_at: float
    servers: tuple[ServerSnapshot, ...]
    buffer_count: int
    buffer_bytes: int
    pooled_bytes: int
    pooled_free_bytes: int
    map_generation: int
    map_lookups: int
    translations: int
    stale_retries: int

    @property
    def pool_utilization(self) -> float:
        if self.pooled_bytes == 0:
            return 0.0
        return (self.pooled_bytes - self.pooled_free_bytes) / self.pooled_bytes

    def imbalance(self) -> float:
        """Max/mean ratio of per-server shared usage (1.0 = perfectly
        even) — the signal a capacity balancer would watch."""
        used = [s.shared_used_bytes for s in self.servers if s.alive]
        if not used or sum(used) == 0:
            return 1.0
        mean = sum(used) / len(used)
        return max(used) / mean if mean else 1.0


def describe_pool(pool: LogicalMemoryPool) -> PoolSnapshot:
    """Collect a snapshot of *pool*'s current state."""
    servers = []
    for sid in sorted(pool.regions):
        region = pool.regions[sid]
        servers.append(
            ServerSnapshot(
                server_id=sid,
                alive=pool.deployment.server(sid).alive,
                private_bytes=region.private_bytes,
                coherent_bytes=region.coherent_bytes,
                shared_bytes=region.shared_bytes,
                shared_used_bytes=region.shared_used_bytes,
                extents_owned=len(pool.translator.global_map.extents_of(sid)),
                resize_events=region.resize_events,
            )
        )
    live_buffers = pool.live_buffers
    return PoolSnapshot(
        taken_at=pool.engine.now,
        servers=tuple(servers),
        buffer_count=len(live_buffers),
        buffer_bytes=sum(b.size for b in live_buffers),
        pooled_bytes=pool.pooled_bytes,
        pooled_free_bytes=pool.pooled_free_bytes,
        map_generation=pool.translator.global_map.generation,
        map_lookups=pool.translator.global_map.lookups,
        translations=pool.translator.translations,
        stale_retries=pool.translator.total_stale_retries,
    )


def render_pool(pool: LogicalMemoryPool, title: str = "pool state") -> str:
    """A printable dashboard of the snapshot."""
    snapshot = describe_pool(pool)
    rows: list[_t.Sequence[_t.Any]] = []
    for server in snapshot.servers:
        rows.append(
            (
                f"server{server.server_id}" + ("" if server.alive else " (DOWN)"),
                fmt_size(server.private_bytes),
                fmt_size(server.shared_bytes),
                f"{server.shared_utilization:.0%}",
                server.extents_owned,
                server.resize_events,
            )
        )
    table = format_table(
        ["server", "private", "shared", "shared used", "extents", "resizes"],
        rows,
        title=title,
    )
    summary = (
        f"buffers: {snapshot.buffer_count} ({fmt_size(snapshot.buffer_bytes)}) | "
        f"pool: {fmt_size(snapshot.pooled_bytes)} at "
        f"{snapshot.pool_utilization:.0%} | imbalance: {snapshot.imbalance():.2f} | "
        f"map gen {snapshot.map_generation}, {snapshot.stale_retries} stale retries"
    )
    return table + "\n" + summary
