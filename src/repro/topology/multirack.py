"""Multi-rack fabric topologies (§3.2's 10–100 TB ambition).

The paper's evaluation is one switch; its vision ("We envision LMPs
providing 10–100 TB of shared memory") needs CXL 3 Port-Based Routing
across cascaded switches.  This module builds those fabrics as
:class:`~repro.fabric.routing.FabricGraph` pods:

* one leaf switch per rack, each with N servers,
* a spine layer interconnecting the leaves (configurable trunk width),

and provides the capacity arithmetic (how many racks reach 100 TB, how
much cross-rack bandwidth the spine must carry) that the scale-out
experiment reports.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigError
from repro.fabric.routing import FabricGraph
from repro.fabric.switch import AccessRoute, FabricSwitch, _remote_latency_fn
from repro.fabric.transport import MemoryTransport
from repro.hw.link import LINK_PRESETS
from repro.hw.server import Server
from repro.sim.engine import Engine
from repro.sim.fluid import Capacity, FluidModel
from repro.sim.trace import Tracer
from repro.topology.builder import Deployment
from repro.topology.specs import DeploymentKind, DeploymentSpec
from repro.units import gib


@dataclasses.dataclass(frozen=True)
class MultiRackSpec:
    """A leaf-spine pod of LMP racks."""

    racks: int = 4
    servers_per_rack: int = 8
    server_dram_bytes: int = gib(256)
    link: str = "link0"
    trunk_width: float = 4.0  # leaf<->spine capacity in server-link multiples
    spine_count: int = 2
    hop_latency_ns: float = 25.0  # per wire+retimer+switch-pipeline hop

    def __post_init__(self) -> None:
        if self.racks < 1 or self.servers_per_rack < 1 or self.spine_count < 1:
            raise ConfigError("racks, servers_per_rack and spine_count must be >= 1")
        if self.link not in LINK_PRESETS:
            raise ConfigError(f"unknown link {self.link!r}")
        if self.trunk_width < 1.0:
            raise ConfigError("trunk width must be >= 1 server link")

    @property
    def total_servers(self) -> int:
        return self.racks * self.servers_per_rack

    @property
    def pool_capacity_bytes(self) -> int:
        """Pooled capacity when every byte is flexed shared (§4.5)."""
        return self.total_servers * self.server_dram_bytes

    def server_name(self, rack: int, index: int) -> str:
        return f"r{rack}s{index}"

    def rack_of_server(self, server_id: int) -> int:
        """Rack of the flat server id used by functional deployments."""
        return server_id // self.servers_per_rack

    def leaf_name(self, rack: int) -> str:
        return f"leaf{rack}"

    def spine_name(self, index: int) -> str:
        return f"spine{index}"


@dataclasses.dataclass
class MultiRackFabric:
    """A built pod: the graph plus its spec."""

    spec: MultiRackSpec
    engine: Engine
    fluid: FluidModel
    graph: FabricGraph

    def sample_servers(self) -> tuple[str, str, str]:
        """(a server, a same-rack peer, a cross-rack peer) for probes."""
        spec = self.spec
        same = spec.server_name(0, 1) if spec.servers_per_rack > 1 else spec.server_name(0, 0)
        cross = spec.server_name(spec.racks - 1, 0) if spec.racks > 1 else same
        return spec.server_name(0, 0), same, cross


def build_multirack(spec: MultiRackSpec, seed: int = 0) -> MultiRackFabric:
    """Wire the pod: servers -> leaf per rack, leaves -> all spines."""
    engine = Engine(seed=seed)
    fluid = FluidModel(engine)
    graph = FabricGraph(engine, fluid)
    link_rate = LINK_PRESETS[spec.link].bandwidth

    for rack in range(spec.racks):
        graph.add_switch(spec.leaf_name(rack), port_count=spec.servers_per_rack + spec.spine_count)
        for index in range(spec.servers_per_rack):
            name = spec.server_name(rack, index)
            graph.add_endpoint(name)
            graph.connect(
                name, spec.leaf_name(rack), bandwidth=link_rate, hop_latency=spec.hop_latency_ns
            )
    for spine in range(spec.spine_count):
        graph.add_switch(spec.spine_name(spine), port_count=spec.racks)
        for rack in range(spec.racks):
            graph.connect(
                spec.leaf_name(rack),
                spec.spine_name(spine),
                bandwidth=link_rate * spec.trunk_width / spec.spine_count,
                hop_latency=spec.hop_latency_ns,
            )
    return MultiRackFabric(spec=spec, engine=engine, fluid=fluid, graph=graph)


def racks_for_capacity(target_bytes: int, spec: MultiRackSpec) -> int:
    """How many racks of this shape reach *target_bytes* of pool."""
    per_rack = spec.servers_per_rack * spec.server_dram_bytes
    return -(-target_bytes // per_rack)


class RackedSwitch(FabricSwitch):
    """A leaf-spine pod collapsed into one routable switch.

    Same-rack routes behave exactly like the single-switch fabric.
    Cross-rack routes additionally traverse the source rack's uplink
    trunk and the destination rack's downlink trunk (shared
    :class:`~repro.sim.fluid.Capacity` constraints sized by
    ``trunk_width``) and pay two extra fabric hops of latency — the
    leaf -> spine -> leaf path of :func:`build_multirack`, made usable
    by the load/store transport instead of only the analytic model."""

    def __init__(
        self,
        engine: "Engine",
        fluid: FluidModel,
        spec: MultiRackSpec,
        name: str = "pod",
    ) -> None:
        super().__init__(
            engine, fluid, name=name, port_count=spec.total_servers + 1
        )
        self.spec = spec
        self._rack_of: dict[str, int] = {}
        self._cross_latency_ns = 2.0 * spec.hop_latency_ns
        trunk_rate = LINK_PRESETS[spec.link].bandwidth * spec.trunk_width
        self._trunk_up = [
            Capacity(f"{name}.{spec.leaf_name(r)}.up", trunk_rate)
            for r in range(spec.racks)
        ]
        self._trunk_down = [
            Capacity(f"{name}.{spec.leaf_name(r)}.down", trunk_rate)
            for r in range(spec.racks)
        ]

    def assign_rack(self, endpoint: str, rack: int) -> None:
        if not 0 <= rack < self.spec.racks:
            raise ConfigError(f"rack {rack} out of range for {self.spec.racks} racks")
        self._rack_of[endpoint] = rack

    def rack_of(self, endpoint: str) -> int | None:
        return self._rack_of.get(endpoint)

    # -- routing: add the trunk legs to cross-rack paths ----------------------

    def read_route(self, requester: str, owner: str) -> AccessRoute:
        route = super().read_route(requester, owner)
        # data flows owner -> requester
        return self._cross_rack(route, src=owner, dst=requester, link_endpoint=requester)

    def write_route(self, requester: str, owner: str) -> AccessRoute:
        route = super().write_route(requester, owner)
        return self._cross_rack(route, src=requester, dst=owner, link_endpoint=requester)

    def copy_route(self, src_owner: str, dst_owner: str) -> AccessRoute:
        route = super().copy_route(src_owner, dst_owner)
        return self._cross_rack(route, src=src_owner, dst=dst_owner, link_endpoint=dst_owner)

    def _cross_rack(
        self, route: AccessRoute, src: str, dst: str, link_endpoint: str
    ) -> AccessRoute:
        if not route.remote:
            return route
        src_rack = self._rack_of.get(src)
        dst_rack = self._rack_of.get(dst)
        if src_rack is None or dst_rack is None or src_rack == dst_rack:
            return route
        path = route.path + (self._trunk_up[src_rack], self._trunk_down[dst_rack])
        base_latency = _remote_latency_fn(self.link_of(link_endpoint), path)
        extra = self._cross_latency_ns

        def latency() -> float:
            return base_latency() + extra

        return AccessRoute(
            path=path,
            latency_fn=latency,
            remote=True,
            description=f"{route.description} (x-rack r{src_rack}->r{dst_rack})",
        )


def build_multirack_deployment(
    spec: MultiRackSpec,
    seed: int = 0,
    scheduler: _t.Any = "heap",
    hybrid_fluid: bool = False,
) -> Deployment:
    """Wire the pod into *functional* hardware: a logical deployment
    whose servers span racks behind a :class:`RackedSwitch`.

    The result is a standard :class:`~repro.topology.builder.Deployment`
    — :class:`~repro.core.runtime.LmpRuntime` and the cluster control
    plane run on it unchanged, which is what lets the 10k-tenant
    serving scenario pool memory across racks.  Server ids are flat
    (``rack * servers_per_rack + index``); names follow
    :meth:`MultiRackSpec.server_name`."""
    dspec = DeploymentSpec(
        kind=DeploymentKind.LOGICAL,
        server_count=spec.total_servers,
        server_dram_bytes=spec.server_dram_bytes,
        link=spec.link,
        switch_ports=spec.total_servers + 1,
    )
    engine = Engine(seed=seed, scheduler=scheduler)
    fluid = FluidModel(engine, transition_driven=hybrid_fluid)
    switch = RackedSwitch(engine, fluid, spec)
    servers: list[Server] = []
    for server_id in range(spec.total_servers):
        rack, index = divmod(server_id, spec.servers_per_rack)
        server = Server(
            engine,
            fluid,
            server_id=server_id,
            dram_bytes=spec.server_dram_bytes,
            link_spec=dspec.link_spec,
            core_count=dspec.core_count,
            name=spec.server_name(rack, index),
        )
        switch.attach(server.name, server.link, server.dram)
        switch.assign_rack(server.name, rack)
        servers.append(server)
    transport = MemoryTransport(engine, fluid, switch, hybrid_transfers=hybrid_fluid)
    return Deployment(
        spec=dspec,
        engine=engine,
        fluid=fluid,
        switch=switch,
        servers=servers,
        pool=None,
        transport=transport,
        tracer=Tracer(),
    )
