"""Multi-rack fabric topologies (§3.2's 10–100 TB ambition).

The paper's evaluation is one switch; its vision ("We envision LMPs
providing 10–100 TB of shared memory") needs CXL 3 Port-Based Routing
across cascaded switches.  This module builds those fabrics as
:class:`~repro.fabric.routing.FabricGraph` pods:

* one leaf switch per rack, each with N servers,
* a spine layer interconnecting the leaves (configurable trunk width),

and provides the capacity arithmetic (how many racks reach 100 TB, how
much cross-rack bandwidth the spine must carry) that the scale-out
experiment reports.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError
from repro.fabric.routing import FabricGraph
from repro.hw.link import LINK_PRESETS
from repro.sim.engine import Engine
from repro.sim.fluid import FluidModel
from repro.units import gib


@dataclasses.dataclass(frozen=True)
class MultiRackSpec:
    """A leaf-spine pod of LMP racks."""

    racks: int = 4
    servers_per_rack: int = 8
    server_dram_bytes: int = gib(256)
    link: str = "link0"
    trunk_width: float = 4.0  # leaf<->spine capacity in server-link multiples
    spine_count: int = 2
    hop_latency_ns: float = 25.0  # per wire+retimer+switch-pipeline hop

    def __post_init__(self) -> None:
        if self.racks < 1 or self.servers_per_rack < 1 or self.spine_count < 1:
            raise ConfigError("racks, servers_per_rack and spine_count must be >= 1")
        if self.link not in LINK_PRESETS:
            raise ConfigError(f"unknown link {self.link!r}")
        if self.trunk_width < 1.0:
            raise ConfigError("trunk width must be >= 1 server link")

    @property
    def total_servers(self) -> int:
        return self.racks * self.servers_per_rack

    @property
    def pool_capacity_bytes(self) -> int:
        """Pooled capacity when every byte is flexed shared (§4.5)."""
        return self.total_servers * self.server_dram_bytes

    def server_name(self, rack: int, index: int) -> str:
        return f"r{rack}s{index}"

    def leaf_name(self, rack: int) -> str:
        return f"leaf{rack}"

    def spine_name(self, index: int) -> str:
        return f"spine{index}"


@dataclasses.dataclass
class MultiRackFabric:
    """A built pod: the graph plus its spec."""

    spec: MultiRackSpec
    engine: Engine
    fluid: FluidModel
    graph: FabricGraph

    def sample_servers(self) -> tuple[str, str, str]:
        """(a server, a same-rack peer, a cross-rack peer) for probes."""
        spec = self.spec
        same = spec.server_name(0, 1) if spec.servers_per_rack > 1 else spec.server_name(0, 0)
        cross = spec.server_name(spec.racks - 1, 0) if spec.racks > 1 else same
        return spec.server_name(0, 0), same, cross


def build_multirack(spec: MultiRackSpec, seed: int = 0) -> MultiRackFabric:
    """Wire the pod: servers -> leaf per rack, leaves -> all spines."""
    engine = Engine(seed=seed)
    fluid = FluidModel(engine)
    graph = FabricGraph(engine, fluid)
    link_rate = LINK_PRESETS[spec.link].bandwidth

    for rack in range(spec.racks):
        graph.add_switch(spec.leaf_name(rack), port_count=spec.servers_per_rack + spec.spine_count)
        for index in range(spec.servers_per_rack):
            name = spec.server_name(rack, index)
            graph.add_endpoint(name)
            graph.connect(
                name, spec.leaf_name(rack), bandwidth=link_rate, hop_latency=spec.hop_latency_ns
            )
    for spine in range(spec.spine_count):
        graph.add_switch(spec.spine_name(spine), port_count=spec.racks)
        for rack in range(spec.racks):
            graph.connect(
                spec.leaf_name(rack),
                spec.spine_name(spine),
                bandwidth=link_rate * spec.trunk_width / spec.spine_count,
                hop_latency=spec.hop_latency_ns,
            )
    return MultiRackFabric(spec=spec, engine=engine, fluid=fluid, graph=graph)


def racks_for_capacity(target_bytes: int, spec: MultiRackSpec) -> int:
    """How many racks of this shape reach *target_bytes* of pool."""
    per_rack = spec.servers_per_rack * spec.server_dram_bytes
    return -(-target_bytes // per_rack)
