"""Instantiate a :class:`~repro.topology.specs.DeploymentSpec` into
simulated hardware: an engine, a fluid solver, servers, the optional
pool box, and a wired fabric switch.

A :class:`Deployment` is the hardware-level handle every higher layer
(pools, workloads, experiments) operates on.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigError
from repro.fabric.switch import FabricSwitch
from repro.fabric.transport import MemoryTransport
from repro.hw.pool_device import PoolDevice
from repro.hw.server import Server
from repro.sim.engine import Engine
from repro.sim.fluid import FluidModel
from repro.sim.trace import Tracer
from repro.topology.specs import DeploymentKind, DeploymentSpec, paper_logical, paper_physical_cache, paper_physical_nocache


@dataclasses.dataclass
class Deployment:
    """A fully wired simulated rack."""

    spec: DeploymentSpec
    engine: Engine
    fluid: FluidModel
    switch: FabricSwitch
    servers: list[Server]
    pool: PoolDevice | None
    transport: MemoryTransport
    tracer: Tracer

    @property
    def kind(self) -> DeploymentKind:
        return self.spec.kind

    def server(self, server_id: int) -> Server:
        try:
            return self.servers[server_id]
        except IndexError:
            raise ConfigError(
                f"no server {server_id}; deployment has {len(self.servers)}"
            ) from None

    def endpoint_of(self, server_id: int) -> str:
        return self.server(server_id).name

    @property
    def pool_endpoint(self) -> str:
        if self.pool is None:
            raise ConfigError("logical deployments have no pool endpoint")
        return self.pool.name

    def live_servers(self) -> list[Server]:
        return [s for s in self.servers if s.alive]

    def run(self, until: _t.Any = None) -> _t.Any:
        """Convenience passthrough to the engine."""
        return self.engine.run(until)


def build(
    spec: DeploymentSpec,
    seed: int = 0,
    scheduler: _t.Any = "heap",
    hybrid_fluid: bool = False,
) -> Deployment:
    """Wire the spec into hardware on a fresh engine.

    *scheduler* selects the engine's event-queue backend ("heap" or
    "calendar"; see :mod:`repro.sim.scheduler`).  *hybrid_fluid* turns on
    the transition-driven fluid solver and callback-chained transport
    operations (``docs/performance.md``): identical timing, far fewer
    discrete events, different traces — hence off by default.
    """
    engine = Engine(seed=seed, scheduler=scheduler)
    fluid = FluidModel(engine, transition_driven=hybrid_fluid)
    tracer = Tracer()
    switch = FabricSwitch(engine, fluid, port_count=spec.switch_ports)

    servers = [
        Server(
            engine,
            fluid,
            server_id=i,
            dram_bytes=spec.server_dram_bytes,
            link_spec=spec.link_spec,
            core_count=spec.core_count,
        )
        for i in range(spec.server_count)
    ]
    for server in servers:
        switch.attach(server.name, server.link, server.dram)

    pool: PoolDevice | None = None
    if spec.kind.is_physical:
        pool = PoolDevice(engine, fluid, spec.pool_dram_bytes, spec.pool_link_spec)
        switch.attach(pool.name, pool.link, pool.dram)

    transport = MemoryTransport(engine, fluid, switch, hybrid_transfers=hybrid_fluid)
    return Deployment(
        spec=spec,
        engine=engine,
        fluid=fluid,
        switch=switch,
        servers=servers,
        pool=pool,
        transport=transport,
        tracer=tracer,
    )


def build_logical(link: str = "link0", seed: int = 0, **overrides: _t.Any) -> Deployment:
    """The paper's Logical configuration (or a variation of it).

    ``scheduler=`` and ``hybrid_fluid=`` overrides are builder arguments
    (see :func:`build`), not spec fields; everything else replaces fields
    on the spec.
    """
    scheduler = overrides.pop("scheduler", "heap")
    hybrid_fluid = overrides.pop("hybrid_fluid", False)
    spec = paper_logical(link)
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    return build(spec, seed=seed, scheduler=scheduler, hybrid_fluid=hybrid_fluid)


def build_physical(
    link: str = "link0",
    cache: bool = True,
    seed: int = 0,
    **overrides: _t.Any,
) -> Deployment:
    """The paper's Physical cache / Physical no-cache configurations."""
    scheduler = overrides.pop("scheduler", "heap")
    hybrid_fluid = overrides.pop("hybrid_fluid", False)
    spec = paper_physical_cache(link) if cache else paper_physical_nocache(link)
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    return build(spec, seed=seed, scheduler=scheduler, hybrid_fluid=hybrid_fluid)
