"""Declarative deployment specifications.

The paper's §4.1 evaluates three configurations, all with 4 servers and
a 96 GB total memory budget:

* **Logical** — the 96 GB is spread uniformly: 24 GB per server, every
  byte eligible for the logical pool.
* **Physical cache** — servers keep 8 GB local used as a cache of the
  64 GB physical pool.
* **Physical no-cache** — same memory split, but local memory is not
  used as a cache of pooled data.

``DeploymentSpec`` captures these (and arbitrary variations) as data;
:mod:`repro.topology.builder` turns a spec into simulated hardware.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import ConfigError
from repro.hw.link import LINK_PRESETS, LinkSpec
from repro.units import gib, mib


class DeploymentKind(enum.Enum):
    """The three §4.1 configurations."""

    LOGICAL = "logical"
    PHYSICAL_CACHE = "physical-cache"
    PHYSICAL_NOCACHE = "physical-nocache"

    @property
    def is_physical(self) -> bool:
        return self is not DeploymentKind.LOGICAL


@dataclasses.dataclass(frozen=True)
class DeploymentSpec:
    """A complete rack deployment description."""

    kind: DeploymentKind
    server_count: int = 4
    server_dram_bytes: int = gib(24)
    pool_dram_bytes: int = 0
    link: str = "link0"
    pool_link_width: float = 1.0
    core_count: int = 14
    cache_page_bytes: int = mib(2)
    switch_ports: int = 32

    def __post_init__(self) -> None:
        if self.server_count < 1:
            raise ConfigError("need at least one server")
        if self.server_dram_bytes <= 0:
            raise ConfigError("server DRAM must be positive")
        if self.kind.is_physical and self.pool_dram_bytes <= 0:
            raise ConfigError(f"{self.kind.value} deployments need pool memory")
        if not self.kind.is_physical and self.pool_dram_bytes:
            raise ConfigError("logical deployments have no pool box")
        if self.link not in LINK_PRESETS:
            known = ", ".join(sorted(LINK_PRESETS))
            raise ConfigError(f"unknown link {self.link!r}; known: {known}")
        if self.pool_link_width < 1.0:
            raise ConfigError("pool link width must be >= 1")

    # -- derived quantities -----------------------------------------------------

    @property
    def link_spec(self) -> LinkSpec:
        return LINK_PRESETS[self.link]

    @property
    def pool_link_spec(self) -> LinkSpec:
        base = LINK_PRESETS[self.link]
        return LinkSpec(base.device, width=self.pool_link_width)

    @property
    def total_memory_bytes(self) -> int:
        return self.server_count * self.server_dram_bytes + self.pool_dram_bytes

    @property
    def disaggregated_bytes(self) -> int:
        """Memory eligible to serve as pool capacity.

        For a physical pool that is the pool box; for a logical pool
        every server byte can be flexed into the shared region (§4.5).
        """
        if self.kind.is_physical:
            return self.pool_dram_bytes
        return self.server_count * self.server_dram_bytes

    @property
    def ports_needed(self) -> int:
        """Fabric switch ports the deployment consumes (a §4.2 cost)."""
        pool_ports = 0
        if self.kind.is_physical:
            pool_ports = max(1, int(self.pool_link_width))
        return self.server_count + pool_ports

    def describe(self) -> str:
        parts = [
            f"{self.kind.value}: {self.server_count} servers x "
            f"{self.server_dram_bytes / 1e9:.0f}GB on {self.link}"
        ]
        if self.kind.is_physical:
            parts.append(f"+ {self.pool_dram_bytes / 1e9:.0f}GB pool")
        return " ".join(parts)


# --- the paper's §4.1 configurations -----------------------------------------


def paper_logical(link: str = "link0") -> DeploymentSpec:
    """Logical: 96 GB spread uniformly, 24 GB per server."""
    return DeploymentSpec(
        kind=DeploymentKind.LOGICAL,
        server_count=4,
        server_dram_bytes=gib(24),
        link=link,
    )


def paper_physical_cache(link: str = "link0", pool_link_width: float = 1.0) -> DeploymentSpec:
    """Physical cache: 8 GB local (used as cache) + 64 GB pool."""
    return DeploymentSpec(
        kind=DeploymentKind.PHYSICAL_CACHE,
        server_count=4,
        server_dram_bytes=gib(8),
        pool_dram_bytes=gib(64),
        link=link,
        pool_link_width=pool_link_width,
    )


def paper_physical_nocache(link: str = "link0", pool_link_width: float = 1.0) -> DeploymentSpec:
    """Physical no-cache: 8 GB local (not caching) + 64 GB pool."""
    return DeploymentSpec(
        kind=DeploymentKind.PHYSICAL_NOCACHE,
        server_count=4,
        server_dram_bytes=gib(8),
        pool_dram_bytes=gib(64),
        link=link,
        pool_link_width=pool_link_width,
    )


def paper_specs(link: str = "link0") -> dict[str, DeploymentSpec]:
    """All three §4.1 configurations, keyed by the paper's labels."""
    return {
        "Logical": paper_logical(link),
        "Physical cache": paper_physical_cache(link),
        "Physical no-cache": paper_physical_nocache(link),
    }
