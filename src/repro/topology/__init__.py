"""Deployment topologies and the cost model.

* :mod:`repro.topology.specs` — declarative deployment descriptions,
  including the paper's exact §4.1 configurations (4 servers, 96 GB
  budget; Logical 24 GB/server; Physical 8 GB local + 64 GB pool).
* :mod:`repro.topology.builder` — instantiate a spec into simulated
  hardware wired to a fabric switch.
* :mod:`repro.topology.cost` — the component cost model behind §4.2
  (Benefit 1: lower entry barrier).
"""

from repro.topology.builder import Deployment, build, build_logical, build_physical
from repro.topology.cost import CostBook, CostBreakdown, compare_scenarios, deployment_cost
from repro.topology.specs import (
    DeploymentKind,
    DeploymentSpec,
    paper_logical,
    paper_physical_cache,
    paper_physical_nocache,
)

__all__ = [
    "CostBook",
    "CostBreakdown",
    "Deployment",
    "DeploymentKind",
    "DeploymentSpec",
    "build",
    "build_logical",
    "build_physical",
    "compare_scenarios",
    "deployment_cost",
    "paper_logical",
    "paper_physical_cache",
    "paper_physical_nocache",
]
