"""Component cost model for §4.2 (Benefit 1: lower entry barrier).

The paper's argument is qualitative: "physical pools demand additional
components such as a power supply, motherboard, and CPUs or custom
ASICs/FPGAs to function as the memory pool.  Also, physical pools
require extra rack space and additional switch ports."  We make it
quantitative with a component cost book (editable; defaults are
order-of-magnitude 2023 list prices) and evaluate the paper's two
scenarios:

* **equal disaggregated memory** — both deployments offer the same pool
  capacity; the physical deployment additionally needs local DIMMs per
  server, plus the pool box.  LMP wins economically.
* **equal total memory** — both deployments hold the same DIMM total;
  the physical one must delegate memory to the pool, leaving its servers
  with less local memory.  LMP wins operationally (more local memory per
  server at the same cost of DIMMs, and no pool box).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError
from repro.topology.specs import DeploymentKind, DeploymentSpec
from repro.units import gb, gib


@dataclasses.dataclass(frozen=True)
class CostBook:
    """Unit prices (USD) for every component the deployments differ in.

    Server base chassis are excluded on purpose: both architectures need
    the same compute servers, so they cancel out of the comparison.
    """

    dimm_per_gb: float = 4.0
    fabric_adapter: float = 300.0  # CXL adapter per attached endpoint
    switch_port: float = 250.0  # per consumed fabric switch port
    rack_unit: float = 150.0  # per RU-month amortized slot cost
    pool_chassis: float = 2500.0  # power supply + motherboard + enclosure
    pool_controller: float = 1800.0  # CPU or custom ASIC/FPGA running the pool
    pool_rack_units: int = 2


@dataclasses.dataclass(frozen=True)
class CostBreakdown:
    """Itemized deployment cost."""

    dimms: float
    fabric_adapters: float
    switch_ports: float
    rack_space: float
    pool_hardware: float

    @property
    def total(self) -> float:
        return (
            self.dimms
            + self.fabric_adapters
            + self.switch_ports
            + self.rack_space
            + self.pool_hardware
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "dimms": self.dimms,
            "fabric_adapters": self.fabric_adapters,
            "switch_ports": self.switch_ports,
            "rack_space": self.rack_space,
            "pool_hardware": self.pool_hardware,
            "total": self.total,
        }


def deployment_cost(spec: DeploymentSpec, book: CostBook | None = None) -> CostBreakdown:
    """Cost of one deployment under the cost book."""
    book = book or CostBook()
    total_gb = spec.total_memory_bytes / gb(1)
    endpoints = spec.server_count + (1 if spec.kind.is_physical else 0)
    pool_hw = 0.0
    rack_units = 0
    if spec.kind.is_physical:
        pool_hw = book.pool_chassis + book.pool_controller
        rack_units = book.pool_rack_units
    return CostBreakdown(
        dimms=total_gb * book.dimm_per_gb,
        fabric_adapters=endpoints * book.fabric_adapter,
        switch_ports=spec.ports_needed * book.switch_port,
        rack_space=rack_units * book.rack_unit,
        pool_hardware=pool_hw,
    )


@dataclasses.dataclass(frozen=True)
class ScenarioComparison:
    """One §4.2 scenario: matched deployments and their costs."""

    name: str
    logical: DeploymentSpec
    physical: DeploymentSpec
    logical_cost: CostBreakdown
    physical_cost: CostBreakdown

    @property
    def physical_premium(self) -> float:
        """Extra cost of the physical deployment, as a fraction."""
        if self.logical_cost.total == 0:
            raise ConfigError("logical deployment has zero cost")
        return self.physical_cost.total / self.logical_cost.total - 1.0

    @property
    def local_memory_per_server(self) -> tuple[int, int]:
        """(logical, physical) local bytes available to each server."""
        return (
            self.logical.server_dram_bytes,
            self.physical.server_dram_bytes,
        )


def compare_scenarios(
    pool_bytes: int = gib(64),
    server_count: int = 4,
    server_local_bytes: int = gib(8),
    link: str = "link0",
    book: CostBook | None = None,
) -> tuple[ScenarioComparison, ScenarioComparison]:
    """Build and cost both §4.2 scenarios.

    Scenario 1 (equal disaggregated memory): both deployments expose
    *pool_bytes* of pooled capacity; the physical one also needs
    *server_local_bytes* of local memory per server to function.

    Scenario 2 (equal total memory): both deployments hold
    ``pool_bytes + server_count*server_local_bytes`` DIMM-bytes total;
    the physical one delegates *pool_bytes* of it to the pool box.
    """
    book = book or CostBook()

    # Scenario 1: equal disaggregated memory.
    logical_1 = DeploymentSpec(
        kind=DeploymentKind.LOGICAL,
        server_count=server_count,
        server_dram_bytes=pool_bytes // server_count,
        link=link,
    )
    physical_1 = DeploymentSpec(
        kind=DeploymentKind.PHYSICAL_CACHE,
        server_count=server_count,
        server_dram_bytes=server_local_bytes,
        pool_dram_bytes=pool_bytes,
        link=link,
    )
    scenario_1 = ScenarioComparison(
        name="equal disaggregated memory",
        logical=logical_1,
        physical=physical_1,
        logical_cost=deployment_cost(logical_1, book),
        physical_cost=deployment_cost(physical_1, book),
    )

    # Scenario 2: equal total memory.
    total = pool_bytes + server_count * server_local_bytes
    logical_2 = DeploymentSpec(
        kind=DeploymentKind.LOGICAL,
        server_count=server_count,
        server_dram_bytes=total // server_count,
        link=link,
    )
    physical_2 = DeploymentSpec(
        kind=DeploymentKind.PHYSICAL_CACHE,
        server_count=server_count,
        server_dram_bytes=server_local_bytes,
        pool_dram_bytes=pool_bytes,
        link=link,
    )
    scenario_2 = ScenarioComparison(
        name="equal total memory",
        logical=logical_2,
        physical=physical_2,
        logical_cost=deployment_cost(logical_2, book),
        physical_cost=deployment_cost(physical_2, book),
    )
    return scenario_1, scenario_2
