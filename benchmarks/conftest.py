"""Benchmark support.

Every bench renders its experiment's tables into
``benchmarks/results/<id>.txt`` so EXPERIMENTS.md can quote them
verbatim, and runs the experiment exactly once under the timer —
drivers already repeat internally (the paper's 10 repetitions), so
once is the honest cost measurement.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Write a rendered experiment to benchmarks/results/<name>.txt."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
