"""B0, A6, A7 — the extension experiments.

* B0: software (RDMA-style) vs hardware (load/store) disaggregation,
  quantifying the paper's §2.1 motivation,
* A6: slowdown and working-set sweeps (the curves behind Figures 2–5),
* A7: rack-scale pools over a leaf-spine PBR fabric (§3.2's 10–100 TB).
"""

from __future__ import annotations

import pytest

from repro.experiments import accelerators, applications, multirack, software, sweeps


@pytest.mark.benchmark(group="extensions")
def test_b0_software_vs_hardware(run_once, record_result):
    result = run_once(software.run)
    record_result("software", result.render())
    cache_line = result.latency_points[0]
    assert cache_line.size_bytes == 64
    # hardware load/store wins decisively at cache-line granularity...
    assert cache_line.hardware_advantage > 3.0
    # ...and the gap closes once transfers amortize the software costs
    assert result.latency_points[-1].hardware_advantage < 1.5
    assert result.software_stream_gbps == pytest.approx(
        result.hardware_stream_gbps, rel=0.05
    )


@pytest.mark.benchmark(group="extensions")
def test_a9_application_kernels(run_once, record_result):
    result = run_once(applications.run)
    record_result("applications", result.render())
    logical = result.score("Logical")
    nocache = result.score("Physical no-cache")
    # latency-bound kernels feel the architecture directly: local KV ops
    # run at local-DRAM latency, remote ones at fabric latency
    assert logical.kv_mean_latency_ns < nocache.kv_mean_latency_ns / 2
    assert logical.bfs_duration_us < nocache.bfs_duration_us / 2
    assert logical.kv_ops_per_sec > nocache.kv_ops_per_sec


@pytest.mark.benchmark(group="extensions")
def test_a6_sweeps(run_once, record_result):
    result = run_once(sweeps.run)
    record_result("sweeps", result.render())
    # Logical never loses to the physical baselines, at any point
    for point in result.size_points:
        if point.physical_feasible:
            assert point.logical_gbps >= point.nocache_gbps - 0.5
            assert point.logical_gbps >= point.cache_gbps - 0.5
    # locality decays exactly as capacity arithmetic predicts: 24/size
    tail = result.size_points[-1]
    assert tail.locality == pytest.approx(24 / tail.vector_gib, abs=0.01)
    # the physical pool falls off the feasibility cliff past 64 GiB
    assert not tail.physical_feasible
    # slowdown sweep: advantage saturates at total/remote = 64/40
    for point in result.slowdown_points:
        assert point.advantage == pytest.approx(1.6, abs=0.05)


@pytest.mark.benchmark(group="extensions")
def test_a8_accelerator_shipping(run_once, record_result):
    result = run_once(accelerators.run)
    record_result("accelerators", result.render())
    by_key = {(p.engine_kind, p.vector_gib): p for p in result.points}
    cpu = by_key[("cpu", 32.0)]
    offload = by_key[("accelerator", 32.0)]
    # same DRAM-bound bandwidth, zero CPU time consumed
    assert offload.aggregate_gbps == pytest.approx(cpu.aggregate_gbps, rel=0.05)
    assert offload.cpu_core_ms == 0.0
    assert cpu.cpu_core_ms > 0.0


@pytest.mark.benchmark(group="extensions")
def test_a7_multirack(run_once, record_result):
    result = run_once(multirack.run)
    record_result("multirack", result.render())
    local, same_rack, cross_rack = result.tiers
    assert local.total_ns < same_rack.total_ns < cross_rack.total_ns
    assert cross_rack.hops == 4
    # bisection bandwidth scales linearly with racks at fixed trunk width
    first, *_rest, last = result.scale_points
    assert last.bisection_gbps == pytest.approx(
        first.bisection_gbps * last.racks / first.racks, rel=0.01
    )
    assert result.racks_for_100tb > result.racks_for_10tb
