"""Substrate micro-benchmarks: the simulator's own performance.

These are classic pytest-benchmark targets (many rounds, statistical
timing): how fast the fluid solver processes events, RS encode/decode
throughput, allocator operation rates, translation rate.  They guard
against performance regressions that would make the figure benches
painfully slow.
"""

from __future__ import annotations

import pytest

from repro.core.addressing import AddressTranslator
from repro.core.failures.erasure import ReedSolomon
from repro.mem.allocator import BuddyAllocator, FreeListAllocator
from repro.mem.layout import GlobalAddress, PageGeometry
from repro.mem.page_table import Protection
from repro.sim.engine import Engine
from repro.sim.fluid import Capacity, FluidModel
from repro.units import mib


@pytest.mark.benchmark(group="substrates")
def test_fluid_solver_event_rate(benchmark):
    """Time 1000 sequential chunk transfers through one capacity."""

    def run():
        engine = Engine()
        fluid = FluidModel(engine)
        link = Capacity("link", 34.5)

        def body():
            for _ in range(1000):
                yield fluid.transfer([link], mib(4))

        engine.run(engine.process(body()))
        return engine.events_processed

    events = benchmark(run)
    assert events >= 1000


@pytest.mark.benchmark(group="substrates")
def test_fluid_solver_concurrent_flows(benchmark):
    """14 cores' worth of concurrent flows with fair-share recomputes."""

    def run():
        engine = Engine()
        fluid = FluidModel(engine)
        link = Capacity("link", 34.5)

        def core_body():
            for _ in range(50):
                yield fluid.transfer([link], mib(4))

        procs = [engine.process(core_body()) for _ in range(14)]
        engine.run(engine.all_of(procs))

    benchmark(run)


@pytest.mark.benchmark(group="substrates")
def test_rs_encode_throughput(benchmark):
    rs = ReedSolomon(4, 2)
    payload = bytes(mib(1))
    shards = benchmark(rs.encode, payload)
    assert len(shards) == 6


@pytest.mark.benchmark(group="substrates")
def test_rs_decode_with_erasures(benchmark):
    rs = ReedSolomon(4, 2)
    payload = bytes(range(256)) * 4096  # 1 MiB
    shards = rs.encode(payload)
    survivors = {1: shards[1], 2: shards[2], 4: shards[4], 5: shards[5]}
    result = benchmark(rs.decode, survivors, len(payload))
    assert result == payload


@pytest.mark.benchmark(group="substrates")
def test_freelist_allocator_ops(benchmark):
    def churn():
        alloc = FreeListAllocator(1 << 30, align=4096)
        live = []
        for i in range(500):
            live.append(alloc.allocate(4096 * (1 + i % 17)))
            if i % 3 == 0:
                alloc.free(live.pop(0))
        return alloc.alloc_count

    assert benchmark(churn) == 500


@pytest.mark.benchmark(group="substrates")
def test_buddy_allocator_ops(benchmark):
    def churn():
        buddy = BuddyAllocator(1 << 26, min_block=4096)
        live = []
        for i in range(500):
            live.append(buddy.allocate(4096 << (i % 4)))
            if i % 2 == 0:
                buddy.free(live.pop(0))
        return len(live)

    benchmark(churn)


@pytest.mark.benchmark(group="substrates")
def test_translation_rate(benchmark):
    geometry = PageGeometry()
    translator = AddressTranslator(geometry)
    translator.register_server(0)
    translator.register_server(1)
    translator.global_map.claim(0, 0)
    table = translator.page_table(0)
    for page in range(geometry.pages_per_extent):
        table.map_page(page, page * geometry.page_bytes, Protection.RW)

    def translate_many():
        for i in range(1000):
            translator.translate(1, GlobalAddress((i * 4096) % geometry.extent_bytes))

    benchmark(translate_many)
