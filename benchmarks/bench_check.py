"""Wall-clock budget for the static-analysis gate.

The check layer runs on every PR, so its own latency is a product
metric: the flow pass (CFG + dataflow over every function in
``src/repro``) must stay under its CI budget or the gate stops being
"the cheap complement" to simulator-level validation.  Standalone::

    PYTHONPATH=src python benchmarks/bench_check.py --smoke

times one full-repo lint pass (LMP001–LMP010), one full-repo flow pass
(LMP011–LMP015), and the flow mutation self-test, asserts the flow
budget, and writes ``BENCH_check.json`` for the CI artifact upload.
"""

from __future__ import annotations

import json
import pathlib
import time

#: CI budget for the full-repo flow pass (the ISSUE's acceptance bar)
FLOW_BUDGET_S = 10.0

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def smoke(out: str = "BENCH_check.json") -> None:
    from repro.check.flow.analyze import analyze_paths
    from repro.check.flow.mutants import run_flow_mutants
    from repro.check.lint import iter_python_files, lint_paths

    files = len(list(iter_python_files([_SRC])))
    functions = _count_functions()

    # warm-up: imports, bytecode, and the ast module out of the timing
    lint_paths([_SRC])
    analyze_paths([_SRC])

    started = time.perf_counter()
    lint_reports = lint_paths([_SRC])
    lint_s = time.perf_counter() - started
    lint_findings = sum(len(r.violations) for r in lint_reports)

    started = time.perf_counter()
    flow_reports = analyze_paths([_SRC])
    flow_s = time.perf_counter() - started
    flow_findings = sum(len(r.violations) for r in flow_reports)

    started = time.perf_counter()
    mutant_reports = run_flow_mutants()
    mutants_s = time.perf_counter() - started
    caught = sum(1 for r in mutant_reports if r.caught)

    results = {
        "files": files,
        "functions": functions,
        "lint": {
            "elapsed_s": round(lint_s, 3),
            "files_per_sec": round(files / lint_s, 1) if lint_s else 0.0,
            "findings": lint_findings,
        },
        "flow": {
            "elapsed_s": round(flow_s, 3),
            "files_per_sec": round(files / flow_s, 1) if flow_s else 0.0,
            "functions_per_sec": round(functions / flow_s, 1) if flow_s else 0.0,
            "findings": flow_findings,
            "budget_s": FLOW_BUDGET_S,
        },
        "flow_mutants": {
            "elapsed_s": round(mutants_s, 3),
            "seeded": len(mutant_reports),
            "caught": caught,
        },
    }
    print(f"lint pass: {files} files in {lint_s:.2f}s ({lint_findings} finding(s))")
    print(
        f"flow pass: {files} files / {functions} functions in {flow_s:.2f}s "
        f"({flow_findings} finding(s))"
    )
    print(f"flow mutants: {caught}/{len(mutant_reports)} caught in {mutants_s:.2f}s")

    path = pathlib.Path(out)
    path.write_text(json.dumps({"target": str(_SRC), "results": results}, indent=2) + "\n")
    print(f"wrote {path}")

    if flow_s > FLOW_BUDGET_S:
        raise SystemExit(
            f"flow pass took {flow_s:.2f}s — over the {FLOW_BUDGET_S:.0f}s CI budget"
        )
    if caught != len(mutant_reports):
        raise SystemExit(
            f"flow mutation harness: only {caught}/{len(mutant_reports)} seeded "
            "defect(s) caught"
        )


def _count_functions() -> int:
    import ast

    from repro.check.lint import iter_python_files

    total = 0
    for path in iter_python_files([_SRC]):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        total += sum(
            isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)) for n in ast.walk(tree)
        )
    return total


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast no-pytest smoke: time both passes + BENCH_check.json",
    )
    parser.add_argument("--out", default="BENCH_check.json")
    cli_args = parser.parse_args()
    if not cli_args.smoke:
        parser.error("pass --smoke (this bench has no pytest-benchmark mode yet)")
    smoke(out=cli_args.out)
