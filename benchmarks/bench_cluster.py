"""C1 — the multi-tenant rack control plane under load.

Measures the workload driver's wall-clock cost at 1, 8, and 32 tenants
(the control plane is pure Python, so this is the practical scaling
limit check), and records the full experiment's tables for
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.cluster.driver import ClusterDriver, WorkloadMix
from repro.cluster.manager import PoolManager
from repro.cluster.tenants import TenantSpec
from repro.core.runtime import LmpRuntime
from repro.experiments import cluster
from repro.mem.layout import PageGeometry
from repro.topology.builder import build_logical
from repro.units import kib, mib


def _drive(tenant_count: int, ops_per_tenant: int = 30):
    deployment = build_logical("link0", server_count=4, server_dram_bytes=mib(32))
    runtime = LmpRuntime(
        deployment,
        geometry=PageGeometry(page_bytes=kib(16), extent_bytes=kib(64)),
        coherent_bytes=kib(64),
        snoop_filter_lines=256,
    )
    driver = ClusterDriver(
        PoolManager(runtime, policy="capacity-balanced"),
        mix=WorkloadMix(alloc_bytes=kib(192), access_bytes=kib(4)),
    )
    specs = [
        TenantSpec(
            tenant_id=f"t{i:02d}", home_server=i % 4, quota_bytes=mib(8)
        )
        for i in range(tenant_count)
    ]
    return driver.run(specs, ops_per_tenant)


@pytest.mark.benchmark(group="cluster")
@pytest.mark.parametrize("tenants", [1, 8, 32])
def test_c1_driver_scaling(benchmark, tenants):
    report = benchmark.pedantic(_drive, args=(tenants,), rounds=1, iterations=1)
    assert report.total_ops == tenants * 30
    assert report.leases_leaked == 0
    assert report.fairness >= 0.8


@pytest.mark.benchmark(group="cluster")
def test_c1_experiment(run_once, record_result):
    result = run_once(cluster.run)
    record_result("cluster", result.render())
    assert all(p.fairness >= 0.8 for p in result.policies)
    assert any(s.rejected > 0 for s in result.sweep)
    assert result.reclaim.leases_leaked == 0
    assert result.reclaim.revoked_bytes_outstanding == 0
