"""C1 — the multi-tenant rack control plane under load.

Measures the workload driver's wall-clock cost at 1, 8, and 32 tenants
(the control plane is pure Python, so this is the practical scaling
limit check), and records the full experiment's tables for
EXPERIMENTS.md.

Also runnable directly (no pytest-benchmark needed) as the CI smoke
job::

    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke

which verifies the race-detector seams are genuinely uninstalled (every
hook slot is ``None``) and prints bare-engine and driver wall-clock
numbers, so a regression that makes the instrumentation non-zero-cost
shows up as a step change in the logged throughput.
"""

from __future__ import annotations

import pytest

from repro.cluster.driver import ClusterDriver, WorkloadMix
from repro.cluster.manager import PoolManager
from repro.cluster.tenants import TenantSpec
from repro.core.runtime import LmpRuntime
from repro.experiments import cluster
from repro.mem.layout import PageGeometry
from repro.topology.builder import build_logical
from repro.units import kib, mib


def _drive(tenant_count: int, ops_per_tenant: int = 30):
    deployment = build_logical("link0", server_count=4, server_dram_bytes=mib(32))
    runtime = LmpRuntime(
        deployment,
        geometry=PageGeometry(page_bytes=kib(16), extent_bytes=kib(64)),
        coherent_bytes=kib(64),
        snoop_filter_lines=256,
    )
    driver = ClusterDriver(
        PoolManager(runtime, policy="capacity-balanced"),
        mix=WorkloadMix(alloc_bytes=kib(192), access_bytes=kib(4)),
    )
    specs = [
        TenantSpec(
            tenant_id=f"t{i:02d}", home_server=i % 4, quota_bytes=mib(8)
        )
        for i in range(tenant_count)
    ]
    return driver.run(specs, ops_per_tenant)


@pytest.mark.benchmark(group="cluster")
@pytest.mark.parametrize("tenants", [1, 8, 32])
def test_c1_driver_scaling(benchmark, tenants):
    report = benchmark.pedantic(_drive, args=(tenants,), rounds=1, iterations=1)
    assert report.total_ops == tenants * 30
    assert report.leases_leaked == 0
    assert report.fairness >= 0.8


@pytest.mark.benchmark(group="cluster")
def test_c1_experiment(run_once, record_result):
    result = run_once(cluster.run)
    record_result("cluster", result.render())
    assert all(p.fairness >= 0.8 for p in result.policies)
    assert any(s.rejected > 0 for s in result.sweep)
    assert result.reclaim.leases_leaked == 0
    assert result.reclaim.revoked_bytes_outstanding == 0


# --- standalone smoke mode (CI: zero-cost instrumentation guard) ----------------


def _bare_engine(events: int) -> None:
    """Pure event-loop churn: the hottest path the monitor seams touch."""
    from repro.sim.engine import Engine

    engine = Engine(seed=3)

    def ticker():
        for _ in range(events):
            yield engine.timeout(1.0)

    engine.process(ticker(), name="ticker")
    engine.run()


def _assert_detectors_uninstalled() -> None:
    from repro.cluster.driver import ClusterDriver as _Driver
    from repro.cluster.manager import PoolManager as _Manager
    from repro.core.api import LmpSession
    from repro.core.coherence.protocol import CoherenceDirectory
    from repro.core.migration import LocalityBalancer
    from repro.fabric.transport import MemoryTransport
    from repro.hw.cpu import Core
    from repro.mem.arena.gauntlet import Gauntlet
    from repro.sim.engine import Engine
    from repro.sim.process import Process
    from repro.workloads import vector_sum

    slots = {
        "Process._monitor": Process._monitor,
        "Engine._monitor": Engine._monitor,
        "LmpSession._access_monitor": LmpSession._access_monitor,
        "CoherenceDirectory._race_hook": CoherenceDirectory._race_hook,
        # observability seams (repro.obs) — all must default to None
        "Process._obs": Process._obs,
        "LmpSession._obs": LmpSession._obs,
        "CoherenceDirectory._obs": CoherenceDirectory._obs,
        "MemoryTransport._obs": MemoryTransport._obs,
        "Core._obs": Core._obs,
        "LocalityBalancer._obs": LocalityBalancer._obs,
        "PoolManager._obs": _Manager._obs,
        "ClusterDriver._obs": _Driver._obs,
        "Gauntlet._obs": Gauntlet._obs,
        "workloads.vector_sum._obs": vector_sum._obs,
    }
    stale = [name for name, value in slots.items() if value is not None]
    if stale:
        raise SystemExit(f"detector seams unexpectedly installed: {', '.join(stale)}")

    # Dispatch fast-path seam: with every monitor and sink above clean, a
    # fresh engine must take the bare specialized loop, not the
    # instrumented one — otherwise the numbers below measure hook
    # dispatch, not the engine.
    probe = Engine()
    if probe._step_hooks or probe._event_sinks or Engine._global_event_sinks:
        raise SystemExit(
            "fresh engine is instrumented: step hooks or event sinks are "
            "installed, so the bare dispatch fast path will not engage"
        )


def smoke(events: int = 100_000, tenants: int = 8) -> None:
    import time

    _assert_detectors_uninstalled()
    started = time.perf_counter()
    _bare_engine(events)
    bare = time.perf_counter() - started
    started = time.perf_counter()
    report = _drive(tenants)
    drive = time.perf_counter() - started

    # observability overhead check: same driver run with repro.obs
    # installed vs. the uninstalled (seams = None) baseline just timed
    from repro.obs import Observability

    obs = Observability()
    with obs.activated():
        started = time.perf_counter()
        obs_report = _drive(tenants)
        with_obs = time.perf_counter() - started
    _assert_detectors_uninstalled()  # activated() must restore every seam

    print(
        f"bare engine: {events} events in {bare:.3f}s "
        f"({events / bare / 1e3:.0f}k events/s)"
    )
    print(
        f"driver ({tenants} tenants x 30 ops): {drive:.3f}s, "
        f"{report.total_ops} ops, fairness {report.fairness:.2f}"
    )
    print(
        f"driver with repro.obs installed: {with_obs:.3f}s "
        f"({with_obs / drive:.2f}x uninstalled, {len(obs.recorder.spans)} spans)"
    )
    if obs_report.total_ops != report.total_ops:
        raise SystemExit(
            "observability changed the simulation: "
            f"{obs_report.total_ops} ops with obs vs {report.total_ops} without"
        )
    print("detector seams: all None (zero-cost path) — OK")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast no-pytest smoke: seam check + wall-clock numbers",
    )
    parser.add_argument("--events", type=int, default=100_000)
    parser.add_argument("--tenants", type=int, default=8)
    cli_args = parser.parse_args()
    if not cli_args.smoke:
        parser.error("pass --smoke (benchmark mode runs under pytest-benchmark)")
    smoke(events=cli_args.events, tenants=cli_args.tenants)
