"""T2 — regenerate Table 2 (Link0/Link1 loaded-latency and bandwidth)."""

from __future__ import annotations

import pytest

from repro.experiments import table2


@pytest.mark.benchmark(group="tables")
def test_table2(run_once, record_result):
    result = run_once(table2.run)
    record_result("table2", result.render())
    for link in result.links:
        assert link.min_latency_ns == pytest.approx(link.paper_min_ns, rel=0.05)
        assert link.bandwidth_gbps == pytest.approx(link.paper_bandwidth_gbps, rel=0.02)
