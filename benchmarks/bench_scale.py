"""S1 — the population-scale open-loop machinery under load.

Measures what PR-level changes most easily regress at 10k tenants:

* ``construct_10k`` — driver + traffic construction (tenant
  registration must stay O(1) amortized: 10k tenants, well under a
  second),
* ``open_loop_slice`` — a reduced open-loop replay through the real
  admission front door (arrivals/s is the rate the experiment's CI
  smoke time depends on),
* ``elastic_slice`` — the same replay with the re-flex autoscaler
  ticking (the controller must stay a small constant on top).

Also runnable directly (no pytest-benchmark needed) as the CI smoke
job::

    PYTHONPATH=src python benchmarks/bench_scale.py --smoke

which first asserts every detector/observability seam (including
``ScaleDriver._obs``) defaults to ``None`` and that a fresh engine
takes the bare dispatch fast path, then writes ``BENCH_scale.json``
and exits non-zero if any configuration's rate drops more than 20%
below the committed floors in
``benchmarks/baselines/BENCH_scale_baseline.json`` (machine-speed
scaled, same scheme as ``bench_engine.py``).
"""

from __future__ import annotations

import gc
import json
import pathlib
import time
import typing as _t

import pytest

from repro.cluster.manager import PoolManager
from repro.core.runtime import LmpRuntime
from repro.mem.layout import PageGeometry
from repro.scale import (
    AutoscalerConfig,
    BurstModel,
    DiurnalCycle,
    FlashCrowd,
    OpenLoopTraffic,
    ReflexAutoscaler,
    ScaleDriver,
    TrafficSpec,
)
from repro.topology.builder import build_logical
from repro.units import kib, mib, us

_BASELINE_PATH = (
    pathlib.Path(__file__).parent / "baselines" / "BENCH_scale_baseline.json"
)

#: allowed rate drop vs. the committed baseline before CI fails
REGRESSION_TOLERANCE = 0.20


def _calibrate() -> float:
    """Machine-speed probe (identical scheme to bench_engine): scales
    the committed floors down on provably slower runners, capped at 1.0
    so a faster machine never loosens the gate."""
    from heapq import heappop, heappush

    best = 0.0
    for _ in range(3):
        gc.collect()
        started = time.perf_counter()
        heap: list[tuple[int, int]] = []
        n = 200_000
        for i in range(n):
            heappush(heap, ((i * 2654435761) % 1000003, i))
        while heap:
            heappop(heap)
        secs = time.perf_counter() - started
        best = max(best, (2 * n) / secs)
    return best


def _manager(server_count: int = 4) -> PoolManager:
    deployment = build_logical(
        "link0", server_count=server_count, server_dram_bytes=mib(8)
    )
    runtime = LmpRuntime(
        deployment,
        geometry=PageGeometry(page_bytes=kib(16), extent_bytes=kib(64)),
        shared_fraction=0.5,
        coherent_bytes=kib(64),
        snoop_filter_lines=256,
    )
    manager = PoolManager(runtime, policy="capacity-balanced")
    for region in manager.pool.regions.values():
        region.flex_on_demand = False
    return manager


def _spec(tenants: int, duration_ns: float, rate_ops_ns: float) -> TrafficSpec:
    return TrafficSpec(
        tenants=tenants,
        base_rate_ops_s=rate_ops_ns * 1e9,
        duration_ns=duration_ns,
        diurnal=DiurnalCycle(period_ns=duration_ns / 2.0, amplitude=0.4),
        bursts=BurstModel(multiplier=3.0, mean_on_ns=us(40), mean_off_ns=us(160)),
        flash_crowds=(
            FlashCrowd(
                start_ns=0.4 * duration_ns,
                duration_ns=0.2 * duration_ns,
                multiplier=6.0,
                first_slot=int(0.6 * tenants),
                last_slot=int(0.7 * tenants),
                focus=0.8,
            ),
        ),
        alloc_bytes=kib(64),
        hold_mean_ns=us(80),
        access_fraction=0.25,
        access_bytes=kib(4),
    )


# -- configurations ----------------------------------------------------------


def construct_10k() -> dict[str, float]:
    """10k-tenant driver construction: registrations/s."""
    manager = _manager()
    spec = _spec(10_000, us(100), 0.0001)
    traffic = OpenLoopTraffic(spec, manager.engine.rng)
    started = time.perf_counter()
    driver = ScaleDriver(manager, traffic, quota_bytes=mib(1))
    secs = time.perf_counter() - started
    assert len(driver.granted_by_slot) == 10_000
    return {"events_per_sec": round(10_000 / secs, 1), "seconds": round(secs, 4)}


def open_loop_slice(
    tenants: int = 10_000, autoscale: bool = False
) -> dict[str, float]:
    """A reduced open-loop replay; arrivals dispatched per second."""
    manager = _manager()
    spec = _spec(tenants, us(400), 0.9e-3)
    driver = ScaleDriver(
        manager, OpenLoopTraffic(spec, manager.engine.rng), quota_bytes=mib(1)
    )
    procs = driver.processes()
    scaler = None
    if autoscale:
        scaler = ReflexAutoscaler(
            manager,
            AutoscalerConfig(period_ns=us(50), min_shared_bytes=mib(4)),
        )
        procs.append(scaler.run(spec.duration_ns + driver.drain_grace_ns))
    started = time.perf_counter()
    manager.engine.run(manager.engine.all_of(procs))
    secs = time.perf_counter() - started
    assert driver.arrivals_seen > 0
    result = {
        "events_per_sec": round(driver.arrivals_seen / secs, 1),
        "arrivals": float(driver.arrivals_seen),
        "seconds": round(secs, 4),
    }
    if scaler is not None:
        result["reflex_actions"] = float(len(scaler.actions))
    return result


def _configs() -> list[tuple[str, _t.Callable[[], dict[str, float]]]]:
    return [
        ("construct_10k", construct_10k),
        ("open_loop_slice", lambda: open_loop_slice(10_000, autoscale=False)),
        ("elastic_slice", lambda: open_loop_slice(10_000, autoscale=True)),
    ]


# -- pytest-benchmark mode ----------------------------------------------------


@pytest.mark.benchmark(group="scale")
@pytest.mark.parametrize("tenants", [2_000, 10_000])
def test_s1_open_loop_slice(benchmark, tenants):
    result = benchmark.pedantic(
        open_loop_slice, args=(tenants,), rounds=1, iterations=1
    )
    assert result["arrivals"] > 0


@pytest.mark.benchmark(group="scale")
def test_s1_experiment(run_once, record_result):
    from repro.experiments import scale as scale_experiment

    result = run_once(scale_experiment.run)  # the full default 10k-tenant S1
    record_result("scale", result.render())
    assert result.elastic_wins_flash


# -- standalone smoke mode (CI: BENCH_scale.json + regression gate) -----------


def _assert_seams_cold() -> None:
    """Every monitor/observability seam must default to None, and a
    fresh engine must take the bare dispatch fast path — otherwise the
    rates below measure hook dispatch, not the population machinery."""
    from repro.cluster.driver import ClusterDriver
    from repro.core.api import LmpSession
    from repro.fabric.transport import MemoryTransport
    from repro.sim.engine import Engine
    from repro.sim.process import Process

    slots = {
        "Process._monitor": Process._monitor,
        "Engine._monitor": Engine._monitor,
        "Process._obs": Process._obs,
        "LmpSession._obs": LmpSession._obs,
        "MemoryTransport._obs": MemoryTransport._obs,
        "PoolManager._obs": PoolManager._obs,
        "ClusterDriver._obs": ClusterDriver._obs,
        "ScaleDriver._obs": ScaleDriver._obs,
    }
    stale = [name for name, value in slots.items() if value is not None]
    if stale:
        raise SystemExit(f"detector seams unexpectedly installed: {', '.join(stale)}")
    probe = Engine()
    if probe._step_hooks or probe._event_sinks or Engine._global_event_sinks:
        raise SystemExit(
            "fresh engine is instrumented: step hooks or event sinks are "
            "installed, so the bare dispatch fast path will not engage"
        )


def smoke(out: str = "BENCH_scale.json", rounds: int = 2) -> None:
    _assert_seams_cold()
    # warm-up: imports, bytecode, allocator pools
    open_loop_slice(500)

    results: dict[str, dict[str, float]] = {}
    for name, run in _configs():
        best: dict[str, float] | None = None
        for _ in range(max(1, rounds)):
            gc.collect()
            result = run()
            if best is None or result["events_per_sec"] > best["events_per_sec"]:
                best = result
        assert best is not None
        results[name] = best
        print(f"{name:20s}: {best['events_per_sec']:>12,.0f} /s "
              f"({best['seconds']:.3f}s)")

    calibration = _calibrate()
    path = pathlib.Path(out)
    path.write_text(
        json.dumps(
            {"results": results, "calibration_ops_per_sec": round(calibration, 1)},
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {path}")

    baseline: dict[str, _t.Any] = {}
    if _BASELINE_PATH.exists():
        baseline = json.loads(_BASELINE_PATH.read_text())
    base_cal = baseline.get("calibration_ops_per_sec", 0.0)
    scale = min(1.0, calibration / base_cal) if base_cal else 1.0
    if scale < 1.0:
        print(
            f"machine calibration: {calibration:,.0f} probe ops/s vs "
            f"{base_cal:,.0f} at baseline capture — floors scaled x{scale:.2f}"
        )
    failures: list[str] = []
    for name, committed in baseline.get("results", {}).items():
        current = results.get(name)
        if current is None:
            failures.append(f"{name}: configuration missing from this run")
            continue
        floor = committed["events_per_sec"] * (1.0 - REGRESSION_TOLERANCE) * scale
        if current["events_per_sec"] < floor:
            failures.append(
                f"{name}: {current['events_per_sec']:,.0f}/s is >"
                f"{REGRESSION_TOLERANCE:.0%} below committed baseline "
                f"{committed['events_per_sec']:,.0f}"
            )
    if failures:
        raise SystemExit("scale bench regression:\n  " + "\n  ".join(failures))
    if baseline:
        print(f"regression gate: all configurations within "
              f"{REGRESSION_TOLERANCE:.0%} of committed baseline — OK")
    else:
        print("regression gate: no committed baseline found (gate skipped)")
    print("detector seams: all None (zero-cost path) — OK")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast no-pytest smoke: seam check + BENCH_scale.json "
        "+ regression gate",
    )
    parser.add_argument("--out", default="BENCH_scale.json")
    parser.add_argument("--rounds", type=int, default=2)
    cli_args = parser.parse_args()
    if not cli_args.smoke:
        parser.error("pass --smoke (benchmark mode runs under pytest-benchmark)")
    smoke(out=cli_args.out, rounds=cli_args.rounds)
