"""L1, B1, B3 — the paper's remaining quantitative claims.

* L1: §4.3 loaded-latency ratios (2.8x / 3.6x),
* B1: §4.2 cost scenarios,
* B3: §4.4 near-memory computing (the result the paper describes but
  does not show).
"""

from __future__ import annotations

import pytest

from repro.experiments import cost, latency, nearmem


@pytest.mark.benchmark(group="claims")
def test_latency_ratios(run_once, record_result):
    result = run_once(latency.run)
    record_result("latency_ratios", result.render())
    assert result.ratio_link0 == pytest.approx(2.8, abs=0.15)
    assert result.ratio_link1 == pytest.approx(3.6, abs=0.2)


@pytest.mark.benchmark(group="claims")
def test_cost_scenarios(run_once, record_result):
    result = run_once(cost.run)
    record_result("cost", result.render())
    assert result.scenario_1.physical_premium > 0
    assert result.scenario_2.physical_premium > 0


@pytest.mark.benchmark(group="claims")
def test_near_memory_computing(run_once, record_result):
    result = run_once(nearmem.run)
    record_result("nearmem", result.render())
    # shipping turns one server's bandwidth into every server's
    assert result.speedup > 4.0
