"""E2 — DES core throughput: the engine's events/sec trajectory.

Three workloads, each timed per scheduler (and, for the cluster slice,
per fluid mode):

* ``event_churn`` — callback chains rescheduling bare timeouts: the
  dispatch loop and timeout pool with nothing else in the way.
* ``timeout_storm`` — hundreds of generator processes yielding
  timeouts: adds process resume/suspend to every event.
* ``cluster_slice`` — a 32-tenant data-heavy run of the real cluster
  driver on the paper's logical rack: the end-to-end number ROADMAP
  item 1 (10k-tenant serving) actually gates on.
* ``cluster_dense`` — the bandwidth-saturated steady state: 1024
  tenants streaming 256 KiB reads through the shared fabric, keeping
  ~1000 flows in flight.  This is the regime the hybrid fluid handoff
  exists for — the seed engine pays O(#flows) per event here, the
  transition-driven solver pays nothing between rate changes — and it
  is the configuration the headline speedup-vs-seed is measured on.

Standalone (the CI engine-bench job)::

    PYTHONPATH=src python benchmarks/bench_engine.py --smoke

writes ``BENCH_engine.json`` and exits non-zero if any configuration's
events/sec drops more than 20% below the committed baseline in
``benchmarks/baselines/BENCH_engine_baseline.json``.  The JSON also
carries each configuration's speedup over the seed engine (the revision
before the fast DES core landed), measured once in this environment
with this same script — see ``docs/performance.md`` for how to read it.

The script runs unmodified against the seed engine (``--seed-compat``
skips configurations the seed does not support), which is how the seed
column was produced.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time
import typing as _t

import pytest

from repro.sim.engine import Engine

#: committed baseline: current events/sec per configuration (regression
#: gate) plus the seed engine's rates measured with `--seed-compat` on a
#: worktree of the pre-fast-core revision (speedup column)
_BASELINE_PATH = pathlib.Path(__file__).parent / "baselines" / "BENCH_engine_baseline.json"

#: allowed events/sec drop vs. the committed baseline before CI fails
REGRESSION_TOLERANCE = 0.20


def _calibrate() -> float:
    """Machine-speed probe: a fixed engine-independent heap workload.

    The committed floors were measured on one machine; a CI runner (or a
    loaded box) is legitimately slower at *everything*, not just at this
    benchmark.  The gate scales the floors by the ratio of this probe's
    throughput to the value recorded alongside the baseline — capped at
    1.0 so a faster machine never loosens the gate — making the floors
    portable without letting an engine regression mask itself (the probe
    never touches repro code)."""
    from heapq import heappop, heappush

    best = 0.0
    for _ in range(3):
        gc.collect()
        started = time.perf_counter()
        heap: list[tuple[int, int]] = []
        n = 200_000
        for i in range(n):
            heappush(heap, ((i * 2654435761) % 1000003, i))
        while heap:
            heappop(heap)
        secs = time.perf_counter() - started
        best = max(best, (2 * n) / secs)
    return best


def _make_engine(seed: int, scheduler: str) -> Engine:
    try:
        return Engine(seed=seed, scheduler=scheduler)
    except TypeError:
        # seed engine (pre-scheduler-protocol): heap only
        if scheduler != "heap":
            raise
        return Engine(seed=seed)


# -- workload 1: event churn ------------------------------------------------


def event_churn(total_events: int = 200_000, scheduler: str = "heap") -> tuple[int, float]:
    """Callback chains rescheduling timeouts; no processes, no fluid."""
    eng = _make_engine(1, scheduler)
    chains = 64
    per_chain = total_events // chains

    def start_chain(i: int) -> None:
        rng = eng.rng.stream(f"churn.{i}")
        delays = [rng.random() * 100.0 for _ in range(256)]
        left = [per_chain]

        def fire(_ev: _t.Any) -> None:
            n = left[0]
            if n:
                left[0] = n - 1
                eng.timeout(delays[n & 255]).callbacks.append(fire)

        fire(None)

    for i in range(chains):
        start_chain(i)
    started = time.perf_counter()
    eng.run()
    elapsed = time.perf_counter() - started
    return eng.events_processed, elapsed


# -- workload 2: timeout storm ----------------------------------------------


def timeout_storm(
    procs: int = 200, ops: int = 500, scheduler: str = "heap"
) -> tuple[int, float]:
    """Generator processes yielding timeouts: resume/suspend on every event."""
    eng = _make_engine(2, scheduler)

    def body(delays: list[float]):
        for i in range(ops):
            yield eng.timeout(delays[i & 255])

    for p in range(procs):
        rng = eng.rng.stream(f"storm.{p}")
        delays = [rng.random() * 50.0 + 1.0 for _ in range(256)]
        eng.process(body(delays), name=f"storm.{p}")
    started = time.perf_counter()
    eng.run()
    elapsed = time.perf_counter() - started
    return eng.events_processed, elapsed


# -- workload 3: cluster-driver slice ---------------------------------------


def cluster_slice(
    tenants: int = 32,
    ops_per_tenant: int = 150,
    scheduler: str = "heap",
    hybrid: bool = False,
) -> tuple[int, float, int]:
    """The real multi-tenant driver on the paper's logical rack,
    data-heavy mix (the regime ROADMAP's 10k-tenant item lives in).

    Returns (events, wall_seconds, completed_ops)."""
    from repro.cluster.driver import ClusterDriver, WorkloadMix
    from repro.cluster.manager import PoolManager
    from repro.cluster.tenants import TenantSpec
    from repro.core.runtime import LmpRuntime
    from repro.mem.layout import PageGeometry
    from repro.topology.builder import build_logical
    from repro.units import kib, mib

    kwargs: dict[str, _t.Any] = {}
    if scheduler != "heap":
        kwargs["scheduler"] = scheduler
    if hybrid:
        kwargs["hybrid_fluid"] = True
    deployment = build_logical(
        "link0", server_count=4, server_dram_bytes=mib(32), **kwargs
    )
    runtime = LmpRuntime(
        deployment,
        geometry=PageGeometry(page_bytes=kib(16), extent_bytes=kib(64)),
        coherent_bytes=kib(64),
        snoop_filter_lines=256,
    )
    driver = ClusterDriver(
        PoolManager(runtime, policy="capacity-balanced"),
        mix=WorkloadMix(
            alloc_fraction=0.05,
            free_fraction=0.02,
            alloc_bytes=kib(192),
            access_bytes=kib(4),
        ),
    )
    specs = [
        TenantSpec(tenant_id=f"t{i:02d}", home_server=i % 4, quota_bytes=mib(8))
        for i in range(tenants)
    ]
    started = time.perf_counter()
    report = driver.run(specs, ops_per_tenant)
    elapsed = time.perf_counter() - started
    return deployment.engine.events_processed, elapsed, report.total_ops


def cluster_dense(
    tenants: int = 1024,
    ops_per_tenant: int = 12,
    scheduler: str = "heap",
    hybrid: bool = False,
) -> tuple[int, float, int]:
    """The bandwidth-saturated steady state: every tenant keeps a
    256 KiB read in flight, so ~#tenants flows share the fabric at all
    times.  Large pages make each access a single long-lived flow, and
    the rack DRAM is sized so the aggregate working set fits (an
    over-committed rack deadlocks admission on the seed engine too).

    Returns (events, wall_seconds, completed_ops)."""
    from repro.cluster.driver import ClusterDriver, WorkloadMix
    from repro.cluster.manager import PoolManager
    from repro.cluster.tenants import TenantSpec
    from repro.core.runtime import LmpRuntime
    from repro.mem.layout import PageGeometry
    from repro.topology.builder import build_logical
    from repro.units import kib, mib

    kwargs: dict[str, _t.Any] = {}
    if scheduler != "heap":
        kwargs["scheduler"] = scheduler
    if hybrid:
        kwargs["hybrid_fluid"] = True
    deployment = build_logical(
        "link0", server_count=4, server_dram_bytes=mib(512), **kwargs
    )
    runtime = LmpRuntime(
        deployment,
        geometry=PageGeometry(page_bytes=kib(256), extent_bytes=mib(1)),
        coherent_bytes=kib(64),
        snoop_filter_lines=256,
    )
    driver = ClusterDriver(
        PoolManager(runtime, policy="capacity-balanced"),
        mix=WorkloadMix(
            alloc_fraction=0.05,
            free_fraction=0.02,
            alloc_bytes=kib(512),
            access_bytes=kib(256),
        ),
    )
    specs = [
        TenantSpec(tenant_id=f"t{i:04d}", home_server=i % 4, quota_bytes=mib(1))
        for i in range(tenants)
    ]
    started = time.perf_counter()
    report = driver.run(specs, ops_per_tenant)
    elapsed = time.perf_counter() - started
    return deployment.engine.events_processed, elapsed, report.total_ops


# -- pytest-benchmark entry points ------------------------------------------


@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_e2_event_churn(benchmark, scheduler):
    events, _ = benchmark.pedantic(
        event_churn, args=(200_000, scheduler), rounds=1, iterations=1
    )
    assert events >= 200_000

@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_e2_timeout_storm(benchmark, scheduler):
    events, _ = benchmark.pedantic(
        timeout_storm, args=(200, 500, scheduler), rounds=1, iterations=1
    )
    assert events >= 200 * 500

@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("hybrid", [False, True])
def test_e2_cluster_slice(benchmark, hybrid):
    events, _, ops = benchmark.pedantic(
        cluster_slice, args=(8, 30, "heap", hybrid), rounds=1, iterations=1
    )
    assert ops == 8 * 30
    assert events > 0


# -- standalone smoke mode (CI: BENCH_engine.json + regression gate) --------


def _configs(seed_compat: bool) -> list[tuple[str, _t.Callable[[], dict[str, float]]]]:
    def churn(sched: str):
        def run() -> dict[str, float]:
            events, secs = event_churn(200_000, sched)
            return {"events": events, "seconds": round(secs, 4),
                    "events_per_sec": round(events / secs, 1)}
        return run

    def storm(sched: str):
        def run() -> dict[str, float]:
            events, secs = timeout_storm(200, 500, sched)
            return {"events": events, "seconds": round(secs, 4),
                    "events_per_sec": round(events / secs, 1)}
        return run

    def slice_(sched: str, hybrid: bool):
        def run() -> dict[str, float]:
            events, secs, ops = cluster_slice(32, 150, sched, hybrid)
            return {"events": events, "seconds": round(secs, 4), "ops": ops,
                    "events_per_sec": round(events / secs, 1),
                    "ops_per_sec": round(ops / secs, 1)}
        return run

    def dense(sched: str, hybrid: bool):
        def run() -> dict[str, float]:
            events, secs, ops = cluster_dense(1024, 12, sched, hybrid)
            return {"events": events, "seconds": round(secs, 4), "ops": ops,
                    "events_per_sec": round(events / secs, 1),
                    "ops_per_sec": round(ops / secs, 1)}
        return run

    configs: list[tuple[str, _t.Callable[[], dict[str, float]]]] = [
        ("event_churn/heap", churn("heap")),
        ("timeout_storm/heap", storm("heap")),
        ("cluster_slice/heap", slice_("heap", False)),
    ]
    if seed_compat:
        # The seed column for the headline: the dense steady state on the
        # per-event solver (the seed's only mode).  Slow by construction —
        # that is the measurement — so the CI run skips it and compares
        # against this recorded rate instead.
        configs += [("cluster_dense/heap", dense("heap", False))]
    else:
        configs += [
            ("event_churn/calendar", churn("calendar")),
            ("timeout_storm/calendar", storm("calendar")),
            ("cluster_slice/calendar", slice_("calendar", False)),
            ("cluster_slice/heap+hybrid", slice_("heap", True)),
            ("cluster_dense/heap+hybrid", dense("heap", True)),
        ]
    return configs


#: the headline compares the hybrid dense run against the seed engine
#: running the SAME workload in its only (per-event) mode, so the seed
#: rate lives under a different configuration name
_SEED_KEY = {"cluster_dense/heap+hybrid": "cluster_dense/heap"}


def smoke(
    out: str = "BENCH_engine.json", seed_compat: bool = False, rounds: int = 2
) -> None:
    """Time every configuration, keeping the best of *rounds* runs per
    configuration — throughput noise on a shared machine is one-sided
    (external load only ever slows a run down), so best-of-N is the
    stable estimator the 20% regression gate needs."""
    # warm-up: imports, bytecode, and allocator pools out of the timing
    event_churn(20_000)
    timeout_storm(20, 50)
    cluster_slice(4, 20)
    if not seed_compat:
        cluster_dense(64, 4, "heap", True)

    results: dict[str, dict[str, float]] = {}
    for name, run in _configs(seed_compat):
        best: dict[str, float] | None = None
        for _ in range(max(1, rounds)):
            # drop the previous run's garbage (engines are webs of
            # event<->callback cycles) so collector pauses don't bleed
            # into the next measurement
            gc.collect()
            result = run()
            if best is None or result["events_per_sec"] > best["events_per_sec"]:
                best = result
        assert best is not None
        results[name] = best
        line = f"{name:28s}: {results[name]['events_per_sec']:>12,.0f} events/s"
        if "ops_per_sec" in results[name]:
            line += f"  ({results[name]['ops_per_sec']:,.0f} ops/s)"
        print(line)

    baseline: dict[str, _t.Any] = {}
    if _BASELINE_PATH.exists():
        baseline = json.loads(_BASELINE_PATH.read_text())
    seed_rates: dict[str, float] = baseline.get("seed_events_per_sec", {})
    for name, result in results.items():
        seed_rate = seed_rates.get(_SEED_KEY.get(name, name))
        if seed_rate:
            result["speedup_vs_seed"] = round(result["events_per_sec"] / seed_rate, 2)
    headline = results.get("cluster_dense/heap+hybrid") or results.get(
        "cluster_slice/heap"
    )
    if headline and "speedup_vs_seed" in headline:
        print(f"cluster-driver dense slice speedup vs seed engine: "
              f"{headline['speedup_vs_seed']:.2f}x")

    calibration = _calibrate()
    path = pathlib.Path(out)
    path.write_text(
        json.dumps(
            {"results": results, "calibration_ops_per_sec": round(calibration, 1)},
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {path}")

    # regression gate: >20% events/sec drop vs the committed baseline
    # fails, with the floors scaled down on machines the calibration
    # probe proves are slower than the one that recorded them
    base_cal = baseline.get("calibration_ops_per_sec", 0.0)
    scale = min(1.0, calibration / base_cal) if base_cal else 1.0
    if scale < 1.0:
        print(
            f"machine calibration: {calibration:,.0f} probe ops/s vs "
            f"{base_cal:,.0f} at baseline capture — floors scaled x{scale:.2f}"
        )
    failures: list[str] = []
    for name, committed in baseline.get("results", {}).items():
        current = results.get(name)
        if current is None:
            failures.append(f"{name}: configuration missing from this run")
            continue
        floor = committed["events_per_sec"] * (1.0 - REGRESSION_TOLERANCE) * scale
        if current["events_per_sec"] < floor:
            failures.append(
                f"{name}: {current['events_per_sec']:,.0f} events/s is >"
                f"{REGRESSION_TOLERANCE:.0%} below committed baseline "
                f"{committed['events_per_sec']:,.0f}"
                + (f" (floor scaled x{scale:.2f} for this machine)" if scale < 1.0 else "")
            )
    if failures:
        raise SystemExit("engine bench regression:\n  " + "\n  ".join(failures))
    if baseline:
        print(f"regression gate: all configurations within "
              f"{REGRESSION_TOLERANCE:.0%} of committed baseline — OK")
    else:
        print("regression gate: no committed baseline found (gate skipped)")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast no-pytest smoke: BENCH_engine.json + regression gate",
    )
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument(
        "--seed-compat",
        action="store_true",
        help="only run configurations the seed engine supports (baseline capture)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=2,
        help="timed rounds per configuration; the best one is reported",
    )
    cli_args = parser.parse_args()
    if not cli_args.smoke:
        parser.error("pass --smoke (benchmark mode runs under pytest-benchmark)")
    smoke(out=cli_args.out, seed_compat=cli_args.seed_compat, rounds=cli_args.rounds)
