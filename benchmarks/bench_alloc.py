"""A10 — the allocator gauntlet's wall-clock side.

The gauntlet's :class:`~repro.mem.arena.gauntlet.GauntletReport` is
deliberately wall-clock-free (determinism); this bench is where real
throughput lives.  Under pytest-benchmark it times one churn replay per
registered allocator; standalone::

    PYTHONPATH=src python benchmarks/bench_alloc.py --smoke

is the CI smoke job: it verifies the ``Gauntlet._obs`` seam defaults to
``None`` (zero-cost convention), measures ops/sec and fragmentation for
every allocator on the churn trace, checks that installing
:mod:`repro.obs` neither changes the scores nor costs more than a few
percent, and writes everything to ``BENCH_alloc.json`` for the CI
artifact upload.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.core.migration import ArenaCompactor
from repro.experiments import alloc
from repro.mem.arena import Gauntlet, allocator_names

#: the same tight arena the A10 experiment uses
CAPACITY = alloc.ARENA_CAPACITY


def _replay(allocator: str, ops: int):
    gauntlet = Gauntlet(capacity=CAPACITY)
    return gauntlet.replay(allocator, "churn", ops=ops, seed=7)


@pytest.mark.benchmark(group="alloc")
@pytest.mark.parametrize("allocator", allocator_names())
def test_a10_allocator_throughput(benchmark, allocator):
    report = benchmark.pedantic(_replay, args=(allocator, 20000), rounds=1, iterations=1)
    assert report.ops == 20000
    assert report.frees + report.failures + report.allocs >= report.ops // 2


@pytest.mark.benchmark(group="alloc")
def test_a10_experiment(run_once, record_result):
    result = run_once(alloc.run)
    record_result("alloc", result.render())
    # compaction must measurably reduce mean external fragmentation on churn
    by_key = {(r.allocator, r.compaction): r for r in result.ablation}
    for name in ("first-fit", "best-fit"):
        assert by_key[(name, True)].ext_frag_mean < by_key[(name, False)].ext_frag_mean
        assert by_key[(name, True)].passes > 0


# --- standalone smoke mode (CI: artifact + zero-cost guard) ---------------------


def _assert_seam_uninstalled() -> None:
    from repro.mem.arena.gauntlet import Gauntlet as _G

    if _G._obs is not None:
        raise SystemExit("Gauntlet._obs unexpectedly installed (must default to None)")


def smoke(ops: int = 20000, out: str = "BENCH_alloc.json") -> None:
    _assert_seam_uninstalled()
    results: dict[str, dict[str, float]] = {}
    for name in allocator_names():
        _replay(name, 512)  # warm-up: imports and bytecode out of the timing
    for name in allocator_names():
        started = time.perf_counter()
        report = _replay(name, ops)
        elapsed = time.perf_counter() - started
        results[name] = {
            "ops_per_sec": round(ops / elapsed, 1),
            "ext_frag_mean": round(report.ext_frag_mean, 4),
            "ext_frag_max": round(report.ext_frag_max, 4),
            "internal_frag": round(report.internal_fragmentation, 4),
            "failures": report.failures,
            "largest_hole_min_ratio": round(report.largest_hole_min_ratio, 4),
        }
        print(
            f"{name:12s}: {results[name]['ops_per_sec']:>10.0f} ops/s  "
            f"efrag {report.ext_frag_mean:.3f} (max {report.ext_frag_max:.3f})  "
            f"ifrag {report.internal_fragmentation:.3f}  fail {report.failures}"
        )

    # compaction pass, sim-time cost included in the artifact
    compact = Gauntlet(capacity=CAPACITY, compactor=ArenaCompactor(threshold=0.2))
    creport = compact.replay("best-fit", "churn", ops=ops, seed=7)
    results["best-fit+compaction"] = {
        "ext_frag_mean": round(creport.ext_frag_mean, 4),
        "ext_frag_max": round(creport.ext_frag_max, 4),
        "compactions": creport.compactions,
        "compaction_bytes_moved": creport.compaction_bytes_moved,
        "compaction_cost_ns": creport.compaction_cost_ns,
    }
    print(
        f"best-fit+compaction: efrag {creport.ext_frag_mean:.3f} "
        f"({creport.compactions} passes, {creport.compaction_bytes_moved / 1024:.0f} KiB moved)"
    )

    # obs overhead: same replay with every seam installed must match the
    # uninstalled scores and stay within a few percent wall clock
    from repro.obs import Observability

    baseline = results["first-fit"]
    started = time.perf_counter()
    _replay("first-fit", ops)
    bare = time.perf_counter() - started
    obs = Observability()
    with obs.activated():
        started = time.perf_counter()
        obs_report = _replay("first-fit", ops)
        with_obs = time.perf_counter() - started
    _assert_seam_uninstalled()
    if round(obs_report.ext_frag_mean, 4) != baseline["ext_frag_mean"]:
        raise SystemExit(
            "observability changed the gauntlet scores: "
            f"{obs_report.ext_frag_mean:.4f} with obs vs {baseline['ext_frag_mean']}"
        )
    overhead = with_obs / bare if bare else 1.0
    results["_meta"] = {"ops": ops, "obs_overhead": round(overhead, 3)}
    print(f"obs overhead on first-fit churn: {overhead:.2f}x uninstalled")
    print("Gauntlet._obs seam: None (zero-cost path) — OK")

    path = pathlib.Path(out)
    path.write_text(json.dumps({"trace": "churn", "results": results}, indent=2) + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast no-pytest smoke: seam check + BENCH_alloc.json",
    )
    parser.add_argument("--ops", type=int, default=20000)
    parser.add_argument("--out", default="BENCH_alloc.json")
    cli_args = parser.parse_args()
    if not cli_args.smoke:
        parser.error("pass --smoke (benchmark mode runs under pytest-benchmark)")
    smoke(ops=cli_args.ops, out=cli_args.out)
