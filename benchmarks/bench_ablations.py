"""A1–A5 — the challenge ablations (§5 mechanisms, measured).

* A1 incast at the physical pool vs logical data placement,
* A2 shared-region sizing policies,
* A3 locality balancing on/off,
* A4 coherent-region pressure + NUMA-aware locks,
* A5 failure recovery regimes.
"""

from __future__ import annotations

import pytest

from repro.experiments import coherence, failures, incast, migration, sizing


@pytest.mark.benchmark(group="ablations")
def test_a1_incast(run_once, record_result):
    result = run_once(incast.run)
    record_result("incast", result.render())
    last = result.points[-1]
    assert last.logical_spread_gbps > 3.5 * last.physical_w1_gbps


@pytest.mark.benchmark(group="ablations")
def test_a2_sizing_policies(run_once, record_result):
    skewed = run_once(sizing.run, "skewed")
    uniform = sizing.run("uniform")
    record_result("sizing", skewed.render() + "\n\n" + uniform.render())
    by_name = {s.policy: s for s in skewed.scores}
    assert by_name["global-optimizer"].objective >= by_name["static"].objective


@pytest.mark.benchmark(group="ablations")
def test_a3_locality_balancing(run_once, record_result):
    result = run_once(migration.run)
    record_result("migration", result.render())
    assert result.final_speedup > 4.0  # 21 -> 97 GB/s on link1
    assert result.with_balancer[-1].locality == pytest.approx(1.0)


@pytest.mark.benchmark(group="ablations")
def test_a4_coherence(run_once, record_result):
    result = run_once(coherence.run)
    record_result("coherence", result.render())
    assert result.filter_sweep[-1].back_invalidations > 0
    scores = {s.lock: s for s in result.lock_scores}
    assert scores["cohort"].remote_directory_messages < scores["spinlock"].remote_directory_messages


@pytest.mark.benchmark(group="ablations")
def test_a5_failure_recovery(run_once, record_result):
    result = run_once(failures.run)
    record_result("failures", result.render())
    by_scheme = {o.scheme: o for o in result.outcomes}
    assert by_scheme["replication x2"].data_survived
    assert by_scheme["RS(2,1)"].data_survived
    assert not by_scheme["unprotected"].data_survived
