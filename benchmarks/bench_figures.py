"""F2–F5 — regenerate Figures 2, 3, 4, 5 (the §4 microbenchmark).

Each figure runs the paper's full protocol: 10 repetitions, 3 pool
configurations, both emulated links.  Assertions pin the paper's
headline shapes; the rendered bar charts land in benchmarks/results/.
"""

from __future__ import annotations

import pytest

from repro.experiments import figures


@pytest.mark.benchmark(group="figures")
def test_figure2_8gb_vector(run_once, record_result):
    result = run_once(figures.run_figure, "figure2")
    record_result("figure2", result.render())
    # "up to 4.7x improved bandwidth compared to Physical no-cache"
    assert result.speedup("link1", "Physical no-cache") == pytest.approx(4.6, abs=0.3)
    assert result.bandwidth("Logical", "link1") == pytest.approx(97.0, rel=0.03)


@pytest.mark.benchmark(group="figures")
def test_figure3_24gb_vector(run_once, record_result):
    result = run_once(figures.run_figure, "figure3")
    record_result("figure3", result.render())
    # the 24 GB scan thrashes the 8 GB cache: cache <= no-cache
    assert result.bandwidth("Physical cache", "link0") <= result.bandwidth(
        "Physical no-cache", "link0"
    )
    # "up to 3.4x compared to Physical cache for the 24GB vector"
    assert result.speedup("link0", "Physical cache") > 3.0


@pytest.mark.benchmark(group="figures")
def test_figure4_64gb_vector(run_once, record_result):
    result = run_once(figures.run_figure, "figure4")
    record_result("figure4", result.render())
    # 3/8 of the vector is local to the LMP server
    assert result.results[("Logical", "link1")].locality == pytest.approx(3 / 8)
    # Logical beats Physical cache on Link1 (paper: +42%)
    assert result.speedup("link1", "Physical cache") > 1.4


@pytest.mark.benchmark(group="figures")
def test_figure5_96gb_vector(run_once, record_result):
    result = run_once(figures.run_figure, "figure5")
    record_result("figure5", result.render())
    for link in ("link0", "link1"):
        assert result.feasible("Logical", link)
        assert not result.feasible("Physical cache", link)
        assert not result.feasible("Physical no-cache", link)
