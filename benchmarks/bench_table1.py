"""T1 — regenerate Table 1 (memory-type latency and bandwidth)."""

from __future__ import annotations

import pytest

from repro.experiments import table1


@pytest.mark.benchmark(group="tables")
def test_table1(run_once, record_result):
    result = run_once(table1.run)
    record_result("table1", result.render())
    for row in result.rows:
        assert row.latency_ns == pytest.approx(row.paper_latency_ns, rel=0.05)
        assert row.bandwidth_gbps == pytest.approx(row.paper_bandwidth_gbps, rel=0.02)
