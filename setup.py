"""Setup shim so `pip install -e .` works without the `wheel` package.

The environment is offline and has no `wheel` distribution, so PEP 660
editable installs (which build an editable wheel) fail.  With a
`setup.py` present and no `[build-system]` table in pyproject.toml, pip
falls back to the legacy `setup.py develop` editable path, which needs
only setuptools.  Package metadata lives here for that reason.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Logical Memory Pools: a simulator-backed reproduction of the "
        "HotNets '23 paper"
    ),
    license="Apache-2.0",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "scipy", "networkx"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
